package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pcf/internal/core"
	"pcf/internal/failures"
	"pcf/internal/lp"
	"pcf/internal/mcf"
	"pcf/internal/routing"
	"pcf/internal/telemetry"
	"pcf/internal/topology"
)

// Schemes the daemon can solve on demand. "best" runs the SolveBest
// degradation ladder (under the breaker's current skip level); the
// fixed schemes solve exactly one formulation and fail rather than
// degrade.
const (
	SchemeBest = "best"
)

// fixedSchemes maps a request's scheme name to its solver. PCF-LS is
// deliberately absent: it requires a conditional-free instance, which
// the ladder derives internally (core.SolveBestFrom rung 1 covers it).
var fixedSchemes = map[string]func(*core.Instance, core.SolveOptions) (*core.Plan, error){
	"PCF-CLS": core.SolvePCFCLS,
	"PCF-TF":  core.SolvePCFTF,
	"FFC":     core.SolveFFC,
}

// Server is the pcfd serving core: admission gate, breaker bank, plan
// registry, and HTTP surface. It implements http.Handler; cmd/pcfd
// mounts it on an http.Server.
type Server struct {
	cfg  Config
	inst *core.Instance
	reg  *Registry
	adm  *Admission

	breakerMu sync.Mutex
	breakers  map[string]*Breaker

	// baseCtx is canceled when the drain deadline expires, hard-
	// canceling every in-flight request context.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	drainMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	mux  *http.ServeMux
	vars *expvar.Map

	// tel is the telemetry store (memory-only without a TelemetryDir),
	// snap the expvar projection over the same stream, emit the fan-out
	// every producer writes to. One record schema, three views.
	tel  *telemetry.Store
	snap *telemetry.Snapshot
	emit telemetry.Emitter

	checksMu sync.RWMutex
	checks   map[string]func() HealthCheck
}

// NewServer builds a server from the config. The instance must already
// carry whatever logical sequences the configured schemes need (cmd/
// pcfd runs core.BuildCLSQuick during preparation).
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Instance == nil {
		return nil, errors.New("serve: Config.Instance is required")
	}
	if err := cfg.Instance.Validate(); err != nil {
		return nil, fmt.Errorf("serve: invalid instance: %w", err)
	}
	var store *Store
	if cfg.StateDir != "" {
		var err error
		store, err = NewStore(cfg.StateDir, cfg.Instance)
		if err != nil {
			return nil, err
		}
		if cfg.RetainCheckpoints > 0 {
			store.SetRetention(cfg.RetainCheckpoints)
		}
	}
	tel, err := telemetry.Open(cfg.TelemetryDir, telemetry.StoreConfig{
		RetainSegments: cfg.RetainTelemetry,
		Logf:           cfg.Logf,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: opening telemetry store: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		inst:     cfg.Instance,
		reg:      NewRegistry(store, cfg.Logf),
		adm:      NewAdmission(cfg.MaxConcurrentSolves, cfg.MaxConcurrentRealizes, cfg.QueueDepth),
		breakers: map[string]*Breaker{},
		tel:      tel,
		snap:     telemetry.NewSnapshot(),
	}
	s.emit = telemetry.Multi(tel, s.snap, cfg.Telemetry)
	s.reg.Telemetry = telemetry.EmitterFunc(func(r telemetry.Record) {
		r.Source = cfg.Source
		s.emit.Emit(r)
	})
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.initVars()
	s.initMux()
	return s, nil
}

// Telemetry exposes the server's record store: the query/tail HTTP
// surface reads it, and embedders (fleet nodes, tests) may emit their
// own records into the same stream via Emitter.
func (s *Server) Telemetry() *telemetry.Store { return s.tel }

// Emitter is the server's record sink: the store, the expvar snapshot,
// and any configured extra sink, behind one fan-out. Records emitted
// here get the server's source stamp if they carry none.
func (s *Server) Emitter() telemetry.Emitter {
	return telemetry.EmitterFunc(func(r telemetry.Record) {
		if r.Source == "" {
			r.Source = s.cfg.Source
		}
		s.emit.Emit(r)
	})
}

// Close releases the server's telemetry store, sealing the active
// segment. Call after Shutdown; requests racing Close lose only their
// telemetry records, never their responses.
func (s *Server) Close() error { return s.tel.Close() }

// breaker returns (creating on first use) the scheme's breaker. The
// ladder scheme may skip down to the last rung; a fixed scheme is
// either closed or open.
func (s *Server) breaker(scheme string) *Breaker {
	s.breakerMu.Lock()
	defer s.breakerMu.Unlock()
	b := s.breakers[scheme]
	if b == nil {
		maxLevel := 1
		if scheme == SchemeBest {
			maxLevel = len(core.BestRungs) - 1
		}
		b = NewBreaker(s.cfg.BreakerThreshold, maxLevel, s.cfg.BreakerCooldown)
		s.breakers[scheme] = b
	}
	return b
}

// Recover loads and republishes the newest valid checkpoint. Call once
// at startup, before serving. ErrNoSnapshot (also returned when no
// state dir is configured) means "start empty", not failure.
func (s *Server) Recover(ctx context.Context) (*Published, error) {
	return s.reg.Recover(ctx, s.inst)
}

// Registry exposes the plan registry (read-mostly; tests and cmd/pcfd
// use it to inspect or seed epochs).
func (s *Server) Registry() *Registry { return s.reg }

// Admission exposes the admission gate for metrics and tests.
func (s *Server) Admission() *Admission { return s.adm }

// Instance exposes the prepared problem instance. The fleet replica
// needs it to decode wire envelopes against the same topology the
// planner solved for.
func (s *Server) Instance() *core.Instance { return s.inst }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// enter registers an in-flight request; it fails once draining has
// begun. The returned func must be called when the request finishes.
func (s *Server) enter() (func(), error) {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.inflight.Add(1)
	return func() { s.inflight.Done() }, nil
}

// Shutdown drains the server: new requests are rejected with
// ErrDraining immediately, in-flight requests get DrainTimeout to
// finish, then their contexts are hard-canceled. Returns ctx.Err() if
// the caller's context expires before the drain completes.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	already := s.draining
	s.draining = true
	s.drainMu.Unlock()
	if already {
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		return ctx.Err()
	case <-timer.C:
		// Drain deadline: hard-cancel whatever is still running and
		// wait for the handlers to unwind.
		s.cfg.Logf("serve: drain deadline expired, canceling in-flight requests")
		s.baseCancel()
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// requestContext derives the handler context: the client's context
// bounded by the (clamped) request timeout, and additionally canceled
// when the server hard-cancels in-flight work at the drain deadline.
func (s *Server) requestContext(r *http.Request, def time.Duration) (context.Context, context.CancelFunc) {
	d := def
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		if parsed, err := time.ParseDuration(raw); err == nil && parsed > 0 {
			d = parsed
		}
	}
	if d > s.cfg.MaxRequestTimeout {
		d = s.cfg.MaxRequestTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// ---- HTTP surface ----

func (s *Server) initMux() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/realize", s.handleRealize)
	s.mux.HandleFunc("GET /v1/validate", s.handleValidate)
	s.mux.HandleFunc("POST /v1/optimal", s.handleOptimal)
	s.mux.HandleFunc("GET /v1/telemetry/query", s.handleTelemetryQuery)
	s.mux.HandleFunc("GET /v1/telemetry/tail", s.handleTelemetryTail)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
}

// track accumulates one request's telemetry record while its handler
// runs and emits it when the handler returns. The record's Epoch is
// only ever set from the *Published the handler actually used, so a
// request record can never name an epoch newer than the plan that
// served it.
type track struct {
	s     *Server
	start time.Time
	rec   telemetry.Record
}

func (s *Server) track(endpoint string) *track {
	return &track{
		s:     s,
		start: time.Now(),
		rec: telemetry.Record{
			Kind:   telemetry.KindRequest,
			Source: s.cfg.Source,
			Name:   endpoint,
		},
	}
}

// served stamps the record with the plan that is answering the request.
func (t *track) served(pub *Published) {
	t.rec.Epoch = pub.Epoch
	t.rec.Scheme = pub.Scheme
}

func (t *track) field(name string, v float64) {
	if t.rec.Fields == nil {
		t.rec.Fields = map[string]float64{}
	}
	t.rec.Fields[name] = v
}

// done emits the record. ctx, when non-nil, contributes the remaining
// deadline slack so queries can watch how close requests run to their
// budgets.
func (t *track) done(ctx context.Context) {
	t.rec.Dur = time.Since(t.start)
	if ctx != nil {
		if dl, ok := ctx.Deadline(); ok {
			t.field("deadline_slack_ms", float64(time.Until(dl))/float64(time.Millisecond))
		}
	}
	t.s.emit.Emit(t.rec)
}

// outcomeOf classifies a handler failure for the record stream: load
// deliberately refused is "shed", everything else "error".
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrOverloaded),
		errors.Is(err, ErrDraining),
		errors.Is(err, ErrBreakerOpen):
		return "shed"
	default:
		return "error"
	}
}

// writeError maps typed serving and solver failures onto HTTP
// statuses and stamps the request record's outcome. Overload-shaped
// failures carry a Retry-After hint.
func (s *Server) writeError(tr *track, w http.ResponseWriter, class Class, err error) {
	tr.rec.Outcome = outcomeOf(err)
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrOverloaded):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.adm.RetryAfterSeconds(class)))
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.DrainTimeout/time.Second)+1))
	case errors.Is(err, ErrBreakerOpen):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.BreakerCooldown/time.Second)+1))
	case errors.Is(err, ErrNoPlan):
		status = http.StatusNotFound
	case errors.Is(err, ErrValidation),
		errors.Is(err, lp.ErrInfeasible),
		errors.Is(err, lp.ErrUnbounded):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSON(w, map[string]any{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The response is already committed; an encode/write failure here
	// only means the client went away.
	_ = enc.Encode(v)
}

// HealthCheck is one named component's contribution to the readiness
// report: a verdict plus a human/JSON-readable detail blob.
type HealthCheck struct {
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Health is the /healthz readiness report. It is a decision surface,
// not just liveness: the fleet front end and external load balancers
// read Status, Epoch and the per-component checks to decide whether a
// node should keep receiving traffic, and the handler answers 503
// whenever Status is "degraded".
type Health struct {
	Status   string `json:"status"` // "ok" or "degraded"
	Draining bool   `json:"draining"`
	Epoch    uint64 `json:"epoch"`
	HasPlan  bool   `json:"has_plan"`
	// Breakers maps scheme → current ladder-skip level (only schemes
	// that have been requested at least once appear).
	Breakers map[string]int `json:"breakers,omitempty"`
	// CheckpointWritable reports whether the state dir still accepts
	// writes; absent when persistence is off.
	CheckpointWritable *bool `json:"checkpoint_dir_writable,omitempty"`
	// TelemetryWritable reports whether the telemetry store dir still
	// accepts writes; absent when the store is memory-only.
	TelemetryWritable *bool `json:"telemetry_dir_writable,omitempty"`
	// Checks carries registered component probes (e.g. the fleet
	// replica's lease freshness).
	Checks map[string]HealthCheck `json:"checks,omitempty"`
	// DegradedReasons explains a "degraded" status, one entry per
	// failing condition.
	DegradedReasons []string `json:"degraded_reasons,omitempty"`
}

// AddHealthCheck registers a named readiness probe evaluated on every
// /healthz request. A probe reporting !OK degrades the node (503).
// Register checks during setup, before the server starts handling
// traffic.
func (s *Server) AddHealthCheck(name string, fn func() HealthCheck) {
	s.checksMu.Lock()
	defer s.checksMu.Unlock()
	if s.checks == nil {
		s.checks = map[string]func() HealthCheck{}
	}
	s.checks[name] = fn
}

// Health evaluates the readiness report. Degradation conditions:
// draining, no published plan, an unwritable checkpoint or telemetry
// dir, or any registered check reporting !OK. Breaker levels are reported but do
// not degrade — a node with a stepped-down solve ladder still serves
// realize traffic at full fidelity.
func (s *Server) Health() Health {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()

	h := Health{
		Draining: draining,
		Epoch:    s.reg.Epoch(),
		Breakers: map[string]int{},
	}
	_, curErr := s.reg.Current()
	h.HasPlan = curErr == nil

	s.breakerMu.Lock()
	for scheme, b := range s.breakers {
		h.Breakers[scheme] = b.Level()
	}
	s.breakerMu.Unlock()

	if store := s.reg.Store(); store != nil {
		writable := store.Writable() == nil
		h.CheckpointWritable = &writable
		if !writable {
			h.DegradedReasons = append(h.DegradedReasons, "checkpoint dir not writable")
		}
	}
	if s.tel.Persistent() {
		writable := s.tel.Writable() == nil
		h.TelemetryWritable = &writable
		if !writable {
			h.DegradedReasons = append(h.DegradedReasons, "telemetry store not writable")
		}
	}

	s.checksMu.RLock()
	for name, fn := range s.checks {
		c := fn()
		if h.Checks == nil {
			h.Checks = map[string]HealthCheck{}
		}
		h.Checks[name] = c
		if !c.OK {
			h.DegradedReasons = append(h.DegradedReasons, "check "+name+" failed")
		}
	}
	s.checksMu.RUnlock()

	if draining {
		h.DegradedReasons = append(h.DegradedReasons, "draining")
	}
	if !h.HasPlan {
		h.DegradedReasons = append(h.DegradedReasons, "no plan published")
	}
	sort.Strings(h.DegradedReasons)
	if len(h.DegradedReasons) > 0 {
		h.Status = "degraded"
	} else {
		h.Status = "ok"
	}
	return h
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	tr := s.track("healthz")
	defer tr.done(nil)
	h := s.Health()
	tr.rec.Epoch = h.Epoch
	if h.Status != "ok" {
		tr.rec.Outcome = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-PCF-Epoch", strconv.FormatUint(h.Epoch, 10))
	if h.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, h)
}

// planInfo is the metadata block shared by plan and solve responses.
type planInfo struct {
	Epoch       uint64    `json:"epoch"`
	Scheme      string    `json:"scheme"`
	Value       float64   `json:"value"`
	Degraded    []string  `json:"degraded,omitempty"`
	PublishedAt time.Time `json:"published_at"`
	Scenarios   int       `json:"validated_scenarios"`
}

func infoOf(p *Published) planInfo {
	return planInfo{
		Epoch:       p.Epoch,
		Scheme:      p.Scheme,
		Value:       p.Value,
		Degraded:    p.Degraded,
		PublishedAt: p.PublishedAt,
		Scenarios:   p.Validated.Scenarios,
	}
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	tr := s.track("plan")
	defer tr.done(nil)
	done, err := s.enter()
	if err != nil {
		s.writeError(tr, w, ClassRealize, err)
		return
	}
	defer done()
	pub, err := s.reg.Current()
	if err != nil {
		s.writeError(tr, w, ClassRealize, err)
		return
	}
	tr.served(pub)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-PCF-Epoch", strconv.FormatUint(pub.Epoch, 10))
	if r.URL.Query().Get("full") == "1" {
		if err := pub.Plan.WriteJSON(w); err != nil {
			s.cfg.Logf("serve: streaming plan: %v", err)
		}
		return
	}
	writeJSON(w, infoOf(pub))
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	tr := s.track("solve")
	done, err := s.enter()
	if err != nil {
		s.writeError(tr, w, ClassSolve, err)
		tr.done(nil)
		return
	}
	defer done()
	ctx, cancel := s.requestContext(r, s.cfg.DefaultSolveTimeout)
	defer cancel()
	defer tr.done(ctx)

	scheme := r.URL.Query().Get("scheme")
	if scheme == "" {
		scheme = SchemeBest
	}
	tr.rec.Scheme = scheme
	fixed, isFixed := fixedSchemes[scheme]
	if !isFixed && scheme != SchemeBest {
		tr.rec.Outcome = "error"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		writeJSON(w, map[string]any{"error": fmt.Sprintf("serve: unknown scheme %q", scheme)})
		return
	}

	release, err := s.adm.Acquire(ctx, ClassSolve)
	if err != nil {
		s.writeError(tr, w, ClassSolve, err)
		return
	}
	defer release()

	br := s.breaker(scheme)
	level := br.Level()
	tr.rec.Rung = level
	opts := core.SolveOptions{Context: ctx}
	opts.LP.FaultHook = s.cfg.LPFaultHook

	solveStart := time.Now()
	var plan *core.Plan
	if isFixed {
		if level > 0 {
			s.writeError(tr, w, ClassSolve, fmt.Errorf("%w: %s", ErrBreakerOpen, scheme))
			return
		}
		plan, err = fixed(s.inst, opts)
	} else {
		plan, err = core.SolveBestFrom(s.inst, opts, level)
	}
	br.Record(err)
	if after := br.Level(); after != level {
		s.emit.Emit(telemetry.Record{
			Kind:   telemetry.KindBreaker,
			Source: s.cfg.Source,
			Scheme: scheme,
			Rung:   after,
			Fields: map[string]float64{"level": float64(after), "trips": float64(br.Trips())},
		})
	}
	solveRec := telemetry.Record{
		Kind:   telemetry.KindSolve,
		Source: s.cfg.Source,
		Scheme: scheme,
		Rung:   level,
		Dur:    time.Since(solveStart),
	}
	if err != nil {
		solveRec.Outcome = outcomeOf(err)
		s.emit.Emit(solveRec)
		s.writeError(tr, w, ClassSolve, err)
		return
	}
	solveRec.Fields = plan.Stats.Metrics()
	s.emit.Emit(solveRec)
	if s.cfg.MutatePlan != nil {
		s.cfg.MutatePlan(plan)
	}

	pub, err := s.reg.Publish(ctx, plan)
	if err != nil {
		s.writeError(tr, w, ClassSolve, err)
		return
	}
	tr.served(pub)

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-PCF-Epoch", strconv.FormatUint(pub.Epoch, 10))
	resp := struct {
		planInfo
		BreakerLevel int `json:"breaker_level"`
	}{infoOf(pub), level}
	writeJSON(w, resp)
}

// parseScenario reads ?links=3,7,12 (dead links) and
// ?degraded=4@0.5,9@0.25 (links at a fraction of nominal capacity)
// into a failure scenario over the instance's topology. A link listed
// in both is dead; dead wins.
func (s *Server) parseScenario(r *http.Request) (failures.Scenario, error) {
	sc := failures.Scenario{Dead: map[topology.LinkID]bool{}}
	parseID := func(part string) (topology.LinkID, error) {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return 0, fmt.Errorf("serve: bad link id %q: %w", part, err)
		}
		if id < 0 || id >= s.inst.Graph.NumLinks() {
			return 0, fmt.Errorf("serve: link id %d out of range [0,%d)", id, s.inst.Graph.NumLinks())
		}
		return topology.LinkID(id), nil
	}
	if raw := strings.TrimSpace(r.URL.Query().Get("links")); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			l, err := parseID(part)
			if err != nil {
				return sc, err
			}
			sc.Dead[l] = true
		}
	}
	if raw := strings.TrimSpace(r.URL.Query().Get("degraded")); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			idStr, alphaStr, ok := strings.Cut(strings.TrimSpace(part), "@")
			if !ok {
				return sc, fmt.Errorf("serve: degraded entry %q is not id@alpha", part)
			}
			l, err := parseID(idStr)
			if err != nil {
				return sc, err
			}
			alpha, err := strconv.ParseFloat(alphaStr, 64)
			if err != nil || math.IsNaN(alpha) || alpha <= 0 || alpha >= 1 {
				return sc, fmt.Errorf("serve: degraded scale %q outside (0,1)", alphaStr)
			}
			if sc.Dead[l] {
				continue
			}
			if sc.Degraded == nil {
				sc.Degraded = map[topology.LinkID]float64{}
			}
			if cur, ok := sc.Degraded[l]; !ok || alpha < cur {
				sc.Degraded[l] = alpha
			}
		}
	}
	return sc, nil
}

func (s *Server) handleRealize(w http.ResponseWriter, r *http.Request) {
	tr := s.track("realize")
	done, err := s.enter()
	if err != nil {
		s.writeError(tr, w, ClassRealize, err)
		tr.done(nil)
		return
	}
	defer done()
	ctx, cancel := s.requestContext(r, s.cfg.DefaultRealizeTimeout)
	defer cancel()
	defer tr.done(ctx)

	pub, err := s.reg.Current()
	if err != nil {
		s.writeError(tr, w, ClassRealize, err)
		return
	}
	tr.served(pub)
	sc, err := s.parseScenario(r)
	if err != nil {
		tr.rec.Outcome = "error"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		writeJSON(w, map[string]any{"error": err.Error()})
		return
	}
	release, err := s.adm.Acquire(ctx, ClassRealize)
	if err != nil {
		s.writeError(tr, w, ClassRealize, err)
		return
	}
	defer release()
	if err := ctx.Err(); err != nil {
		s.writeError(tr, w, ClassRealize, err)
		return
	}

	real, err := pub.Sweep.Realize(sc)
	if err != nil {
		s.writeError(tr, w, ClassRealize, err)
		return
	}
	maxU := 0.0
	for _, u := range real.U {
		if u > maxU {
			maxU = u
		}
	}
	mlu := routing.MLUOf(s.inst.Graph, real)
	var deadLinks []int
	for l, dead := range sc.Dead {
		if dead {
			deadLinks = append(deadLinks, int(l))
		}
	}
	tr.field("mlu", mlu)
	tr.field("max_u", maxU)
	tr.field("dead_links", float64(len(deadLinks)))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-PCF-Epoch", strconv.FormatUint(pub.Epoch, 10))
	writeJSON(w, map[string]any{
		"epoch":      pub.Epoch,
		"scheme":     pub.Scheme,
		"dead_links": deadLinks,
		"pairs":      len(real.Pairs),
		"max_u":      maxU,
		"mlu":        mlu,
	})
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	tr := s.track("validate")
	done, err := s.enter()
	if err != nil {
		s.writeError(tr, w, ClassRealize, err)
		tr.done(nil)
		return
	}
	defer done()
	ctx, cancel := s.requestContext(r, s.cfg.DefaultSolveTimeout)
	defer cancel()
	defer tr.done(ctx)

	pub, err := s.reg.Current()
	if err != nil {
		s.writeError(tr, w, ClassRealize, err)
		return
	}
	tr.served(pub)
	release, err := s.adm.Acquire(ctx, ClassRealize)
	if err != nil {
		s.writeError(tr, w, ClassRealize, err)
		return
	}
	defer release()

	q := r.URL.Query()
	model := q.Get("model")
	if model == "" {
		model = "exact"
	}
	var stats *routing.SweepStats
	var rep *routing.SampledReport
	switch model {
	case "exact":
		stats, err = routing.ValidateStats(ctx, pub.Plan, routing.ValidateOptions{})
	case "sampled":
		var opts routing.SampleOptions
		opts, err = s.sampleOptions(q, pub.Plan)
		if err != nil {
			tr.rec.Outcome = "error"
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			writeJSON(w, map[string]any{"error": err.Error()})
			return
		}
		rep, err = routing.ValidateSampled(ctx, pub.Plan, opts)
		if rep != nil {
			stats = &rep.Stats
		}
	default:
		tr.rec.Outcome = "error"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		writeJSON(w, map[string]any{"error": fmt.Sprintf("serve: unknown scenario model %q (want exact or sampled)", model)})
		return
	}
	valRec := telemetry.Record{
		Kind:    telemetry.KindValidate,
		Source:  s.cfg.Source,
		Name:    model,
		Scheme:  pub.Scheme,
		Epoch:   pub.Epoch,
		Outcome: outcomeOf(err),
	}
	if stats != nil {
		valRec.Fields = stats.Metrics()
		valRec.Dur = stats.Total
	}
	if rep != nil {
		// Coverage fields ride on the same record, so the telemetry
		// query surface exposes the (ε, δ) bound next to the sweep
		// statistics.
		for k, v := range rep.Coverage.Metrics() {
			valRec.Fields[k] = v
		}
	}
	s.emit.Emit(valRec)
	if err != nil {
		s.writeError(tr, w, ClassRealize, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-PCF-Epoch", strconv.FormatUint(pub.Epoch, 10))
	resp := map[string]any{
		"epoch":     pub.Epoch,
		"valid":     true,
		"model":     model,
		"scenarios": stats.Scenarios,
		"smw_hits":  stats.SMWHits,
		"fallbacks": stats.Fallbacks,
	}
	if rep != nil {
		resp["coverage"] = rep.Coverage
		resp["coverage_summary"] = rep.Coverage.String()
		resp["worst_mlu"] = rep.WorstMLU
	}
	writeJSON(w, resp)
}

// sampleOptions parses the sampled-model query knobs: p (uniform unit
// failure probability), samples, delta, seed, kcap.
func (s *Server) sampleOptions(q url.Values, plan *core.Plan) (routing.SampleOptions, error) {
	opts := routing.SampleOptions{}
	p := 0.01
	if raw := q.Get("p"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return opts, fmt.Errorf("serve: bad unit probability %q: %w", raw, err)
		}
		p = v
	}
	pm, err := failures.Uniform(plan.Instance.Failures, p)
	if err != nil {
		return opts, err
	}
	opts.Model = pm
	if raw := q.Get("samples"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			return opts, fmt.Errorf("serve: bad sample count %q: %w", raw, err)
		}
		opts.Samples = v
	}
	if raw := q.Get("delta"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || math.IsNaN(v) || v <= 0 || v >= 1 {
			return opts, fmt.Errorf("serve: delta %q outside (0,1)", raw)
		}
		opts.Delta = v
	}
	if raw := q.Get("seed"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return opts, fmt.Errorf("serve: bad seed %q: %w", raw, err)
		}
		opts.Seed = v
	}
	if raw := q.Get("kcap"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			return opts, fmt.Errorf("serve: bad kcap %q: %w", raw, err)
		}
		opts.KCap = v
	}
	return opts, nil
}

func (s *Server) handleOptimal(w http.ResponseWriter, r *http.Request) {
	tr := s.track("optimal")
	done, err := s.enter()
	if err != nil {
		s.writeError(tr, w, ClassSolve, err)
		tr.done(nil)
		return
	}
	defer done()
	ctx, cancel := s.requestContext(r, s.cfg.DefaultSolveTimeout)
	defer cancel()
	defer tr.done(ctx)

	release, err := s.adm.Acquire(ctx, ClassSolve)
	if err != nil {
		s.writeError(tr, w, ClassSolve, err)
		return
	}
	defer release()

	z, worst, stats, err := mcf.OptimalUnderFailuresStats(ctx, s.inst.Graph, s.inst.TM, s.inst.Failures)
	mcfRec := telemetry.Record{
		Kind:    telemetry.KindMCF,
		Source:  s.cfg.Source,
		Outcome: outcomeOf(err),
	}
	if stats != nil {
		mcfRec.Fields = stats.Metrics()
		mcfRec.Dur = stats.Total
	}
	s.emit.Emit(mcfRec)
	if err != nil {
		s.writeError(tr, w, ClassSolve, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]any{
		"optimal":        z,
		"worst_scenario": worst.String(),
		"scenarios":      stats.Scenarios,
		"warm_hits":      stats.WarmHits,
	})
}
