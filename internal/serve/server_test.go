package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pcf/internal/core"
	"pcf/internal/faultinject"
	"pcf/internal/lp"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Instance == nil {
		cfg.Instance = testInstance()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return m
}

func mustPost(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := testClient.Post(url, "", nil)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := testClient.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}

// TestServerSolvePlanRealizeValidate walks the happy path end to end:
// solve publishes epoch 1, plan and realize serve it, validate re-runs
// the sweep, and /debug/vars exposes the engine statistics.
func TestServerSolvePlanRealizeValidate(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Before the first solve: no plan anywhere.
	resp := mustGet(t, ts.URL+"/v1/plan")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/plan before solve: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	resp = mustPost(t, ts.URL+"/v1/solve")
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/solve: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-PCF-Epoch"); got != "1" {
		t.Fatalf("solve epoch header = %q, want 1", got)
	}
	solved := decodeBody(t, resp)
	if solved["scheme"] != "PCF-CLS" {
		t.Fatalf("solved scheme = %v, want PCF-CLS", solved["scheme"])
	}

	resp = mustGet(t, ts.URL+"/v1/plan")
	info := decodeBody(t, resp)
	if int(info["epoch"].(float64)) != 1 {
		t.Fatalf("plan epoch = %v, want 1", info["epoch"])
	}
	if info["validated_scenarios"].(float64) < 1 {
		t.Fatalf("plan served without validated scenarios: %v", info)
	}

	// Full plan body decodes as a plan document.
	resp = mustGet(t, ts.URL+"/v1/plan?full=1")
	full := decodeBody(t, resp)
	if full["scheme"] != "PCF-CLS" {
		t.Fatalf("full plan scheme = %v", full["scheme"])
	}

	// Realize the failure of link 0; the plan is congestion-free, so
	// MLU stays within the guarantee (1/value, plus round-off).
	resp = mustGet(t, ts.URL+"/v1/plan")
	resp.Body.Close()
	resp = mustPost(t, ts.URL+"/v1/realize?links=0")
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/realize: status %d: %s", resp.StatusCode, body)
	}
	real := decodeBody(t, resp)
	if int(real["epoch"].(float64)) != 1 {
		t.Fatalf("realize epoch = %v, want 1", real["epoch"])
	}
	if mlu := real["mlu"].(float64); mlu > 1+1e-9 {
		t.Fatalf("realized MLU %g exceeds the congestion-free bound", mlu)
	}

	// Bad scenario ids are a client error.
	resp = mustPost(t, ts.URL+"/v1/realize?links=999")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("realize with bad link: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp = mustGet(t, ts.URL+"/v1/validate")
	val := decodeBody(t, resp)
	if val["valid"] != true {
		t.Fatalf("validate = %v, want valid", val)
	}

	resp = mustGet(t, ts.URL+"/debug/vars")
	vars := decodeBody(t, resp)
	if int(vars["epoch"].(float64)) != 1 {
		t.Fatalf("vars epoch = %v, want 1", vars["epoch"])
	}
	for _, key := range []string{"core_solve_stats", "routing_sweep_stats", "serving_sweep_stats", "requests"} {
		if _, ok := vars[key]; !ok {
			t.Fatalf("vars missing %q: %v", key, vars)
		}
	}
	if vars["core_solve_stats"] == nil {
		t.Fatalf("core_solve_stats still nil after a solve")
	}

	resp = mustGet(t, ts.URL+"/healthz")
	health := decodeBody(t, resp)
	if health["status"] != "ok" || health["draining"] != false {
		t.Fatalf("health = %v", health)
	}
}

// TestServerUnknownScheme is a client error, not a server failure.
func TestServerUnknownScheme(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := mustPost(t, ts.URL+"/v1/solve?scheme=nonsense")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestServerValidationRollback corrupts every solved plan via the
// MutatePlan fault hook and checks publication is refused with 422,
// the epoch never advances, and the daemon keeps serving the previous
// plan — an unvalidated plan is never visible.
func TestServerValidationRollback(t *testing.T) {
	var corrupt bool
	var mu sync.Mutex
	s, ts := newTestServer(t, Config{
		MutatePlan: func(p *core.Plan) {
			mu.Lock()
			defer mu.Unlock()
			if corrupt {
				// Wreck the reservations: validation must now find an
				// unrealizable or congested scenario.
				for id := range p.TunnelRes {
					//lint:ignore pcflint/mutafterpub fault hook corrupts the plan before publication to prove validation rejects it
					p.TunnelRes[id] = 0
				}
				for id := range p.LSRes {
					//lint:ignore pcflint/mutafterpub second half of the same deliberate pre-publication corruption
					p.LSRes[id] = 0
				}
			}
		},
	})

	resp := mustPost(t, ts.URL+"/v1/solve")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean solve: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	mu.Lock()
	corrupt = true
	mu.Unlock()
	resp = mustPost(t, ts.URL+"/v1/solve")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("corrupted solve: status %d, want 422: %s", resp.StatusCode, body)
	}
	resp.Body.Close()

	if got := s.Registry().Epoch(); got != 1 {
		t.Fatalf("epoch after rejected publish = %d, want 1", got)
	}
	resp = mustGet(t, ts.URL+"/v1/plan")
	info := decodeBody(t, resp)
	if int(info["epoch"].(float64)) != 1 {
		t.Fatalf("served epoch = %v, want the pre-corruption 1", info["epoch"])
	}
}

// TestServerBreakerStepsLadder injects numerical failures into every
// LP start and checks: the "best" scheme degrades internally (the
// ladder still lands on FFC), while repeated failures against the
// fixed PCF-CLS scheme trip its breaker open and later requests are
// rejected fast with 503 + Retry-After.
func TestServerBreakerStepsLadder(t *testing.T) {
	// Fail every PCF-CLS master solve start; FFC's model is the
	// smallest, so let anything with few rows through. Simpler and
	// robust: fail the first two starts of every request (CLS, LS),
	// letting the third (FFC) through — for the ladder. For the fixed
	// scheme, every request has exactly one start, which fails.
	var mu sync.Mutex
	failFirst := 2
	perRequest := 0
	hook := func(ev lp.FaultEvent) error {
		if ev.Point != lp.FaultSolveStart {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		perRequest++
		if perRequest <= failFirst {
			return fmt.Errorf("test: injected numerical breakdown: %w", lp.ErrNumerical)
		}
		return nil
	}
	s, ts := newTestServer(t, Config{
		LPFaultHook:      hook,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // no annealing during the test
	})

	// Ladder request: CLS and LS rungs fail, FFC lands.
	resp := mustPost(t, ts.URL+"/v1/solve?scheme=best")
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("ladder solve: status %d: %s", resp.StatusCode, body)
	}
	out := decodeBody(t, resp)
	if out["scheme"] != "FFC" {
		t.Fatalf("ladder landed on %v, want FFC", out["scheme"])
	}
	deg, _ := out["degraded"].([]any)
	if len(deg) != 2 {
		t.Fatalf("degraded = %v, want the two failed rungs", out["degraded"])
	}

	// Fixed scheme: each request's single start fails; after
	// BreakerThreshold failures the breaker opens.
	for i := 0; i < 2; i++ {
		mu.Lock()
		perRequest = 0
		failFirst = 1
		mu.Unlock()
		resp := mustPost(t, ts.URL+"/v1/solve?scheme=PCF-CLS")
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failing fixed solve %d: status %d, want 500", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if lvl := s.breaker("PCF-CLS").Level(); lvl != 1 {
		t.Fatalf("fixed-scheme breaker level = %d, want 1 (open)", lvl)
	}
	resp = mustPost(t, ts.URL+"/v1/solve?scheme=PCF-CLS")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker solve: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("open-breaker response missing Retry-After")
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "circuit breaker") {
		t.Fatalf("open-breaker body = %s", body)
	}
}

// TestServerBreakerUsesFaultinjectLadder proves the serve breaker and
// the faultinject ladder hooks compose: FailFirstNStarts(1, ...) on a
// best solve degrades only the first rung.
func TestServerBreakerUsesFaultinjectLadder(t *testing.T) {
	_, ts := newTestServer(t, Config{
		LPFaultHook: faultinject.FailFirstNStarts(1, lp.ErrNumerical),
	})
	resp := mustPost(t, ts.URL+"/v1/solve")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d", resp.StatusCode)
	}
	out := decodeBody(t, resp)
	if out["scheme"] != "PCF-LS" {
		t.Fatalf("scheme = %v, want PCF-LS after one injected failure", out["scheme"])
	}
}

// TestServerSheddingUnderLoad saturates the single solve worker and
// the depth-1 queue with a blocked solve, then checks the overflow
// request is shed immediately with 503 + Retry-After while the realize
// class keeps serving.
func TestServerSheddingUnderLoad(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	var once sync.Once
	hook := func(ev lp.FaultEvent) error {
		if ev.Point == lp.FaultSolveStart {
			select {
			case started <- struct{}{}:
			default:
			}
			<-gate // block the solve until the test releases it
		}
		return nil
	}
	_, ts := newTestServer(t, Config{
		LPFaultHook:         hook,
		MaxConcurrentSolves: 1,
		QueueDepth:          1,
	})
	defer once.Do(func() { close(gate) })

	// First solve occupies the worker (blocked inside the LP).
	errc := make(chan error, 2)
	go func() {
		resp, err := testClient.Post(ts.URL+"/v1/solve", "", nil)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// Wait until it is actually inside the solver.
	deadline := time.Now().Add(5 * time.Second)
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatalf("first solve never started")
	}
	// Second solve sits in the queue.
	go func() {
		resp, err := testClient.Post(ts.URL+"/v1/solve?timeout=10s", "", nil)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// Wait for it to be queued, then overflow with a third.
	for {
		resp := mustGet(t, ts.URL+"/debug/vars")
		vars := decodeBody(t, resp)
		if q, _ := vars["admission_queued_solve"].(float64); q >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("second solve never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp := mustPost(t, ts.URL+"/v1/solve")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow solve: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shed response missing Retry-After")
	}
	resp.Body.Close()

	// Unblock and let the stacked solves finish.
	once.Do(func() { close(gate) })
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("stacked solve %d transport error: %v", i, err)
		}
	}
}

// TestServerDeadline checks a request deadline propagates into the
// solver and maps to 504, within a small grace.
func TestServerDeadline(t *testing.T) {
	hook := func(ev lp.FaultEvent) error {
		if ev.Point == lp.FaultIteration {
			time.Sleep(2 * time.Millisecond) // make the solve slow
		}
		return nil
	}
	_, ts := newTestServer(t, Config{LPFaultHook: hook})
	start := time.Now()
	resp := mustPost(t, ts.URL+"/v1/solve?timeout=30ms")
	elapsed := time.Since(start)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, body)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline 30ms, request took %v", elapsed)
	}
}

// TestServerDrain checks shutdown semantics: draining rejects new
// requests with 503, waits for in-flight work, and hard-cancels work
// that outlives the drain deadline.
func TestServerDrain(t *testing.T) {
	started := make(chan struct{}, 1)
	hook := func(ev lp.FaultEvent) error {
		switch ev.Point {
		case lp.FaultSolveStart:
			select {
			case started <- struct{}{}:
			default:
			}
		case lp.FaultIteration:
			// Slow the solve enough that it outlives the drain
			// deadline; the solver's per-iteration context check turns
			// the hard-cancel into a prompt abort.
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}
	s, ts := newTestServer(t, Config{
		LPFaultHook:  hook,
		DrainTimeout: 50 * time.Millisecond,
	})

	respc := make(chan *http.Response, 1)
	go func() {
		resp, err := testClient.Post(ts.URL+"/v1/solve", "", nil)
		if err != nil {
			respc <- nil
			return
		}
		respc <- resp
	}()
	<-started

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()

	// New work is rejected once draining.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp := mustGet(t, ts.URL+"/healthz")
		h := decodeBody(t, resp)
		if h["draining"] == true {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp := mustPost(t, ts.URL+"/v1/solve")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	// The slow solve outlives the 50ms drain deadline; Shutdown then
	// hard-cancels its context, the LP aborts at the next iteration
	// checkpoint, and the drain completes.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("Shutdown did not complete after drain deadline")
	}
	resp = <-respc
	if resp == nil {
		t.Fatalf("in-flight solve transport error")
	}
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("hard-canceled solve returned 200")
	}
	resp.Body.Close()
}
