package serve

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"pcf/internal/telemetry"
)

// The telemetry HTTP surface: GET /v1/telemetry/query runs one
// aggregation over the server's record store, GET /v1/telemetry/tail
// long-polls for new records. Both serve pcftop and any operator
// tooling that prefers JSON over scraping /debug/vars.

// maxTailWait caps how long one tail request may park before answering
// with an empty batch; clients just poll again with the same cursor.
const maxTailWait = 55 * time.Second

func badQuery(w http.ResponseWriter, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	writeJSON(w, map[string]any{"error": msg})
}

// parseQuery builds a telemetry.Query from URL parameters: kind, src,
// name, scheme, outcome, since/until (RFC 3339), bucket (Go duration),
// metric, group_by.
func parseQuery(r *http.Request) (telemetry.Query, string) {
	v := r.URL.Query()
	q := telemetry.Query{
		Kind:    telemetry.Kind(v.Get("kind")),
		Source:  v.Get("src"),
		Name:    v.Get("name"),
		Scheme:  v.Get("scheme"),
		Outcome: v.Get("outcome"),
		Metric:  v.Get("metric"),
		GroupBy: v.Get("group_by"),
	}
	if raw := v.Get("since"); raw != "" {
		ts, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			return q, "bad since (want RFC 3339): " + err.Error()
		}
		q.Since = ts
	}
	if raw := v.Get("until"); raw != "" {
		ts, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			return q, "bad until (want RFC 3339): " + err.Error()
		}
		q.Until = ts
	}
	if raw := v.Get("bucket"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			return q, "bad bucket (want a positive Go duration)"
		}
		q.Bucket = d
	}
	return q, ""
}

func (s *Server) handleTelemetryQuery(w http.ResponseWriter, r *http.Request) {
	tr := s.track("telemetry_query")
	defer tr.done(nil)
	q, msg := parseQuery(r)
	if msg != "" {
		tr.rec.Outcome = "error"
		badQuery(w, msg)
		return
	}
	buckets, err := s.tel.Query(q)
	if err != nil {
		tr.rec.Outcome = "error"
		if errors.Is(err, telemetry.ErrBadQuery) {
			badQuery(w, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		writeJSON(w, map[string]any{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]any{"buckets": buckets})
}

func (s *Server) handleTelemetryTail(w http.ResponseWriter, r *http.Request) {
	// Tail requests deliberately do not emit request records: a parked
	// tail producing a record would wake itself and every other tail.
	v := r.URL.Query()
	var after uint64
	if raw := v.Get("after"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			badQuery(w, "bad after (want an unsigned cursor)")
			return
		}
		after = n
	}
	limit := 256
	if raw := v.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			badQuery(w, "bad limit (want a positive integer)")
			return
		}
		limit = n
	}
	wait := 25 * time.Second
	if raw := v.Get("wait"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			badQuery(w, "bad wait (want a non-negative Go duration)")
			return
		}
		wait = min(d, maxTailWait)
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	recs, cursor, err := s.tel.Tail(ctx, after, limit)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		writeJSON(w, map[string]any{"error": err.Error()})
		return
	}
	if recs == nil {
		recs = []telemetry.Record{}
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]any{"records": recs, "cursor": cursor})
}
