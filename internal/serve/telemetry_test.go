package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"pcf/internal/telemetry"
)

// TestServerTelemetryEndpoints drives the query and tail HTTP surface:
// a solve produces solve/validate/publish records, requests produce
// request records, and both endpoints serve them back.
func TestServerTelemetryEndpoints(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{TelemetryDir: dir})

	resp := mustPost(t, ts.URL+"/v1/solve")
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("solve: status %d: %s", resp.StatusCode, body)
	}
	resp.Body.Close()
	resp = mustPost(t, ts.URL+"/v1/realize?links=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("realize: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// One publish record, epoch 1.
	resp = mustGet(t, ts.URL+"/v1/telemetry/query?kind=publish&group_by=epoch")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d", resp.StatusCode)
	}
	out := decodeBody(t, resp)
	buckets, _ := out["buckets"].([]any)
	if len(buckets) != 1 {
		t.Fatalf("publish buckets = %v, want one epoch group", out)
	}
	b := buckets[0].(map[string]any)
	if b["group"] != "1" || int(b["count"].(float64)) != 1 {
		t.Fatalf("publish bucket = %v, want epoch 1 count 1", b)
	}

	// Request records grouped by endpoint include the solve and the
	// realize.
	resp = mustGet(t, ts.URL+"/v1/telemetry/query?kind=request&group_by=name")
	out = decodeBody(t, resp)
	groups := map[string]int{}
	for _, raw := range out["buckets"].([]any) {
		b := raw.(map[string]any)
		groups[b["group"].(string)] = int(b["count"].(float64))
	}
	if groups["solve"] != 1 || groups["realize"] != 1 {
		t.Fatalf("request groups = %v, want solve and realize counted", groups)
	}

	// The solve record carries the engine metrics schema.
	resp = mustGet(t, ts.URL+"/v1/telemetry/query?kind=solve&metric=lp_iterations")
	out = decodeBody(t, resp)
	buckets, _ = out["buckets"].([]any)
	if len(buckets) != 1 || int(buckets[0].(map[string]any)["count"].(float64)) != 1 {
		t.Fatalf("solve metric buckets = %v, want one record with lp_iterations", out)
	}

	// Tail returns the backlog with a resumable cursor.
	resp = mustGet(t, ts.URL+"/v1/telemetry/tail?after=0&wait=0s")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tail: status %d", resp.StatusCode)
	}
	out = decodeBody(t, resp)
	recs, _ := out["records"].([]any)
	if len(recs) == 0 {
		t.Fatalf("tail returned no records: %v", out)
	}
	cursor := out["cursor"].(float64)
	if cursor < float64(len(recs)) {
		t.Fatalf("cursor %v below record count %d", cursor, len(recs))
	}
	// Resuming from the cursor with no wait is an empty poll.
	resp = mustGet(t, ts.URL+fmt.Sprintf("/v1/telemetry/tail?after=%d&wait=0s", int(cursor)))
	out = decodeBody(t, resp)
	if n := len(out["records"].([]any)); n != 0 {
		t.Fatalf("tail past the cursor returned %d records, want 0", n)
	}

	// Bad parameters are client errors.
	for _, q := range []string{
		"/v1/telemetry/query?group_by=nonsense",
		"/v1/telemetry/query?bucket=nonsense",
		"/v1/telemetry/query?since=nonsense",
		"/v1/telemetry/tail?after=-1",
		"/v1/telemetry/tail?limit=0",
	} {
		resp := mustGet(t, ts.URL+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400", q, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestHealthTelemetryWritable checks the readiness report gains the
// telemetry-store probe: present and true for a healthy persistent
// store, absent for a memory-only one, degrading when the store dir
// stops accepting writes.
func TestHealthTelemetryWritable(t *testing.T) {
	dir := t.TempDir()
	telDir := dir + "/telemetry"
	_, ts := newTestServer(t, Config{TelemetryDir: telDir})

	resp := mustPost(t, ts.URL+"/v1/solve")
	resp.Body.Close()
	resp = mustGet(t, ts.URL+"/healthz")
	h := decodeBody(t, resp)
	if h["telemetry_dir_writable"] != true {
		t.Fatalf("healthy store: telemetry_dir_writable = %v, want true", h["telemetry_dir_writable"])
	}
	if h["status"] != "ok" {
		t.Fatalf("status = %v, want ok: %v", h["status"], h)
	}

	// Remove the store directory out from under the server: the probe
	// fails (even for root, unlike chmod) and the node degrades.
	if err := os.RemoveAll(telDir); err != nil {
		t.Fatal(err)
	}
	resp = mustGet(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead telemetry dir: status %d, want 503", resp.StatusCode)
	}
	h = decodeBody(t, resp)
	if h["telemetry_dir_writable"] != false || h["status"] != "degraded" {
		t.Fatalf("degraded report = %v, want telemetry_dir_writable false", h)
	}

	// Memory-only servers have no probe to report.
	_, ts2 := newTestServer(t, Config{})
	resp = mustPost(t, ts2.URL+"/v1/solve")
	resp.Body.Close()
	resp = mustGet(t, ts2.URL+"/healthz")
	h = decodeBody(t, resp)
	if _, present := h["telemetry_dir_writable"]; present {
		t.Fatalf("memory-only server reports a telemetry probe: %v", h)
	}
}

// TestTelemetryEpochConsistency hammers the server with realize and
// plan requests while epochs publish concurrently, and asserts — at
// emit time, synchronously in the record path — that no request record
// ever carries an epoch newer than the registry's published epoch.
// Registry epochs only advance and publish records emit after the
// swap, so a violation here would mean a record described a plan that
// was not yet the served one. Also cross-checks the expvar snapshot
// against the store: two views over one stream must agree.
func TestTelemetryEpochConsistency(t *testing.T) {
	var violations atomic.Int64
	var s *Server
	check := telemetry.EmitterFunc(func(r telemetry.Record) {
		if r.Kind != telemetry.KindRequest || r.Epoch == 0 {
			return
		}
		if cur := s.Registry().Epoch(); r.Epoch > cur {
			violations.Add(1)
			t.Errorf("request record carries epoch %d, registry only at %d", r.Epoch, cur)
		}
	})
	s, tsrv := newTestServer(t, Config{Telemetry: check})

	resp := mustPost(t, tsrv.URL+"/v1/solve")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed solve: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	_, plan := testPlan(t)

	const readers = 4
	const publishes = 5
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := testClient.Post(tsrv.URL+"/v1/realize?links=0", "", nil)
				if err == nil {
					resp.Body.Close()
				}
				resp2, err := testClient.Get(tsrv.URL + "/debug/vars")
				if err == nil {
					resp2.Body.Close()
				}
			}
		}()
	}
	for i := 0; i < publishes; i++ {
		if _, err := s.Registry().Publish(context.Background(), plan); err != nil {
			t.Errorf("publish %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	if violations.Load() != 0 {
		t.Fatalf("%d records outran the registry epoch", violations.Load())
	}
	if got := s.Registry().Epoch(); got != 1+publishes {
		t.Fatalf("final epoch = %d, want %d", got, 1+publishes)
	}

	// Snapshot and store are projections of the same stream: the
	// store's request count must match the snapshot's.
	buckets, err := s.Telemetry().Query(telemetry.Query{Kind: telemetry.KindRequest})
	if err != nil {
		t.Fatal(err)
	}
	var stored int
	if len(buckets) == 1 {
		stored = buckets[0].Count
	}
	if snapTotal := s.snap.Count(telemetry.KindRequest, ""); int64(stored) != snapTotal {
		t.Fatalf("store holds %d request records, snapshot counted %d", stored, snapTotal)
	}
}
