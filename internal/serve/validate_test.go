package serve

import (
	"net/http"
	"strings"
	"testing"
)

// TestServerSampledValidate drives /v1/validate?model=sampled end to
// end: the response carries the explicit coverage bound, the knobs are
// validated, the same seed reproduces the same report, and the
// coverage fields surface through /v1/telemetry/query.
func TestServerSampledValidate(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := mustPost(t, ts.URL+"/v1/solve")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	const q = "/v1/validate?model=sampled&p=0.05&samples=30&delta=0.05&seed=9"
	resp = mustGet(t, ts.URL+q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sampled validate: status %d", resp.StatusCode)
	}
	out := decodeBody(t, resp)
	if out["valid"] != true || out["model"] != "sampled" {
		t.Fatalf("sampled validate = %v", out)
	}
	cov, ok := out["coverage"].(map[string]any)
	if !ok {
		t.Fatalf("no coverage report in %v", out)
	}
	for _, key := range []string{"epsilon", "delta", "samples", "tail_mass", "exhaustive"} {
		if _, ok := cov[key]; !ok {
			t.Fatalf("coverage report missing %q: %v", key, cov)
		}
	}
	if int(cov["samples"].(float64)) != 30 {
		t.Fatalf("coverage samples = %v, want 30", cov["samples"])
	}
	summary, _ := out["coverage_summary"].(string)
	if !strings.Contains(summary, "P(unvalidated scenario) <=") {
		t.Fatalf("coverage summary %q does not state the bound", summary)
	}

	// Same seed, byte-identical report.
	resp = mustGet(t, ts.URL+q)
	again := decodeBody(t, resp)
	if again["coverage_summary"] != summary {
		t.Fatalf("same seed diverged:\n got %v\nwant %v", again["coverage_summary"], summary)
	}

	// The validate telemetry record carries the coverage fields and the
	// model name.
	resp = mustGet(t, ts.URL+"/v1/telemetry/query?kind=validate&metric=epsilon&group_by=name")
	tq := decodeBody(t, resp)
	buckets, _ := tq["buckets"].([]any)
	found := false
	for _, raw := range buckets {
		b := raw.(map[string]any)
		if b["group"] == "sampled" && int(b["count"].(float64)) >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("telemetry query shows no sampled validate records with epsilon: %v", tq)
	}

	// Knob validation is a client error, not a server failure.
	for _, bad := range []string{
		"/v1/validate?model=nonsense",
		"/v1/validate?model=sampled&p=2",
		"/v1/validate?model=sampled&samples=abc",
		"/v1/validate?model=sampled&delta=7",
	} {
		resp := mustGet(t, ts.URL+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400", bad, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Degraded scenario realization through the HTTP surface: MLU is
	// computed against the scaled capacity.
	resp = mustPost(t, ts.URL+"/v1/realize?degraded=0@0.5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded realize: status %d", resp.StatusCode)
	}
	deg := decodeBody(t, resp)
	resp = mustPost(t, ts.URL+"/v1/realize")
	base := decodeBody(t, resp)
	if deg["mlu"].(float64) < base["mlu"].(float64) {
		t.Fatalf("degraded MLU %v below nominal %v", deg["mlu"], base["mlu"])
	}
	resp = mustPost(t, ts.URL+"/v1/realize?degraded=0@1.5")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("degraded with bad alpha: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}
