package telemetry

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"
)

// Query selects and aggregates stored records. Zero-valued dimension
// filters match everything; Since is inclusive, Until exclusive.
type Query struct {
	// Dimension filters. Outcome matches the normalized outcome (an
	// empty stored outcome is "ok").
	Kind    Kind   `json:"kind,omitempty"`
	Source  string `json:"src,omitempty"`
	Name    string `json:"name,omitempty"`
	Scheme  string `json:"scheme,omitempty"`
	Outcome string `json:"outcome,omitempty"`

	// Time window (zero = unbounded).
	Since time.Time `json:"since,omitempty"`
	Until time.Time `json:"until,omitempty"`

	// Bucket slices the window into fixed-width time buckets (0 = one
	// bucket for the whole window).
	Bucket time.Duration `json:"bucket,omitempty"`

	// Metric selects the aggregated value: "" counts records,
	// "dur_ms" aggregates Record.Dur in milliseconds, anything else
	// aggregates that Fields key (records lacking it are skipped).
	Metric string `json:"metric,omitempty"`

	// GroupBy splits each time bucket by a dimension: "kind",
	// "src", "name", "scheme", "outcome", "epoch", or "rung".
	GroupBy string `json:"group_by,omitempty"`
}

// ErrBadQuery reports an unusable query parameter.
var ErrBadQuery = errors.New("telemetry: bad query")

// Bucket is one aggregated cell of a query result. Percentiles are
// nearest-rank over the exact value set, so equal inputs always
// produce equal outputs — aggregation is deterministic by
// construction.
type Bucket struct {
	// Start is the bucket's start time (zero when the query had no
	// bucket width).
	Start time.Time `json:"start,omitempty"`
	// Group is the GroupBy dimension's value ("" without grouping).
	Group string  `json:"group,omitempty"`
	Count int     `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// match reports whether a record passes the query's filters.
func (q Query) match(r Record) bool {
	if q.Kind != "" && r.Kind != q.Kind {
		return false
	}
	if q.Source != "" && r.Source != q.Source {
		return false
	}
	if q.Name != "" && r.Name != q.Name {
		return false
	}
	if q.Scheme != "" && r.Scheme != q.Scheme {
		return false
	}
	if q.Outcome != "" && r.OutcomeOrOK() != q.Outcome {
		return false
	}
	if !q.Since.IsZero() && r.Time.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && !r.Time.Before(q.Until) {
		return false
	}
	return true
}

// value extracts the metric value from a matched record; ok is false
// when the record lacks the metric and must be skipped.
func (q Query) value(r Record) (float64, bool) {
	switch q.Metric {
	case "":
		return 1, true
	case "dur_ms":
		return float64(r.Dur) / float64(time.Millisecond), true
	default:
		v, ok := r.Fields[q.Metric]
		return v, ok && !math.IsNaN(v)
	}
}

// group extracts the GroupBy dimension value from a record.
func (q Query) group(r Record) (string, error) {
	switch q.GroupBy {
	case "":
		return "", nil
	case "kind":
		return string(r.Kind), nil
	case "src", "source":
		return r.Source, nil
	case "name":
		return r.Name, nil
	case "scheme":
		return r.Scheme, nil
	case "outcome":
		return r.OutcomeOrOK(), nil
	case "epoch":
		return strconv.FormatUint(r.Epoch, 10), nil
	case "rung":
		return strconv.Itoa(r.Rung), nil
	default:
		return "", fmt.Errorf("%w: unknown group_by %q", ErrBadQuery, q.GroupBy)
	}
}

// bucketKey identifies one (time bucket, group) accumulation cell.
type bucketKey struct {
	start int64 // UnixNano of the bucket start; 0 when unbucketed
	group string
}

// Query aggregates the matching records into time-bucketed cells with
// count/sum/min/max/p50/p95/p99. Records are visited in sequence
// order and percentiles are nearest-rank over sorted values, so the
// same stored records always produce the same result.
func (s *Store) Query(q Query) ([]Bucket, error) {
	if _, err := q.group(Record{}); err != nil {
		return nil, err
	}
	values := map[bucketKey][]float64{}
	s.mu.Lock()
	scanErr := s.scanLocked(0, func(r Record) bool {
		if !q.match(r) {
			return true
		}
		v, ok := q.value(r)
		if !ok {
			return true
		}
		g, _ := q.group(r) // validated above
		key := bucketKey{group: g}
		if q.Bucket > 0 {
			key.start = r.Time.Truncate(q.Bucket).UnixNano()
		}
		values[key] = append(values[key], v)
		return true
	})
	s.mu.Unlock()
	if scanErr != nil {
		return nil, scanErr
	}

	keys := make([]bucketKey, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].start != keys[j].start {
			return keys[i].start < keys[j].start
		}
		return keys[i].group < keys[j].group
	})

	out := make([]Bucket, 0, len(keys))
	for _, k := range keys {
		vs := values[k]
		b := Bucket{Group: k.group, Count: len(vs)}
		if k.start != 0 {
			b.Start = time.Unix(0, k.start).UTC()
		}
		sorted := append([]float64(nil), vs...)
		sort.Float64s(sorted)
		b.Min = sorted[0]
		b.Max = sorted[len(sorted)-1]
		for _, v := range sorted {
			b.Sum += v
		}
		b.P50 = nearestRank(sorted, 50)
		b.P95 = nearestRank(sorted, 95)
		b.P99 = nearestRank(sorted, 99)
		out = append(out, b)
	}
	return out, nil
}

// nearestRank returns the p-th percentile of sorted values by the
// nearest-rank definition: the value at index ceil(p/100·n)−1. It is
// exact and deterministic — no interpolation.
func nearestRank(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
