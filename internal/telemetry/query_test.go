package telemetry

import (
	"errors"
	"math"
	"testing"
	"time"
)

// approxEq is the test-side tolerance helper for aggregated floats.
func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func t0() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }

// seedStore emits a deterministic mixed stream: 10 request records (5
// ok / 3 shed / 2 error) across two sources and 4 solve records with a
// known lp_iterations series.
func seedStore(t *testing.T) *Store {
	t.Helper()
	s := mustOpen(t, "", StoreConfig{})
	t.Cleanup(func() { s.Close() })
	outcomes := []string{"", "", "", "", "", "shed", "shed", "shed", "error", "error"}
	for i, oc := range outcomes {
		src := "pcfd-a"
		if i%2 == 1 {
			src = "pcfd-b"
		}
		s.Emit(Record{
			Time:    t0().Add(time.Duration(i) * 10 * time.Second),
			Kind:    KindRequest,
			Source:  src,
			Name:    "/v1/realize",
			Outcome: oc,
			Epoch:   uint64(1 + i/5),
			Dur:     time.Duration(i+1) * time.Millisecond,
		})
	}
	for i, iters := range []float64{100, 200, 300, 400} {
		s.Emit(Record{
			Time:   t0().Add(time.Duration(i) * time.Minute),
			Kind:   KindSolve,
			Scheme: "pcf-ls",
			Fields: map[string]float64{"lp_iterations": iters},
		})
	}
	return s
}

func TestQueryCountsAndFilters(t *testing.T) {
	s := seedStore(t)

	bs, err := s.Query(Query{Kind: KindRequest})
	if err != nil || len(bs) != 1 {
		t.Fatalf("Query(kind=request) = %v buckets, err %v; want 1, nil", len(bs), err)
	}
	if bs[0].Count != 10 {
		t.Fatalf("request count %d, want 10", bs[0].Count)
	}

	bs, err = s.Query(Query{Kind: KindRequest, Outcome: "shed"})
	if err != nil || len(bs) != 1 || bs[0].Count != 3 {
		t.Fatalf("shed count: buckets %v err %v, want one bucket of 3", bs, err)
	}
	// Empty stored outcome normalizes to "ok".
	bs, err = s.Query(Query{Kind: KindRequest, Outcome: "ok"})
	if err != nil || len(bs) != 1 || bs[0].Count != 5 {
		t.Fatalf("ok count: buckets %v err %v, want one bucket of 5", bs, err)
	}
	bs, err = s.Query(Query{Kind: KindRequest, Source: "pcfd-b"})
	if err != nil || len(bs) != 1 || bs[0].Count != 5 {
		t.Fatalf("source filter: buckets %v err %v, want one bucket of 5", bs, err)
	}
	// Since inclusive, Until exclusive: records at 40s..80s.
	bs, err = s.Query(Query{Kind: KindRequest, Since: t0().Add(40 * time.Second), Until: t0().Add(90 * time.Second)})
	if err != nil || len(bs) != 1 || bs[0].Count != 5 {
		t.Fatalf("window filter: buckets %v err %v, want one bucket of 5", bs, err)
	}
	// No matches: no buckets, no error.
	bs, err = s.Query(Query{Kind: KindRequest, Scheme: "nope"})
	if err != nil || len(bs) != 0 {
		t.Fatalf("no-match query: buckets %v err %v, want none", bs, err)
	}
}

func TestQueryMetricAggregation(t *testing.T) {
	s := seedStore(t)

	// lp_iterations over the 4 solve records: 100,200,300,400.
	bs, err := s.Query(Query{Kind: KindSolve, Metric: "lp_iterations"})
	if err != nil || len(bs) != 1 {
		t.Fatalf("metric query: %v buckets, err %v", len(bs), err)
	}
	b := bs[0]
	if b.Count != 4 || !approxEq(b.Sum, 1000) || !approxEq(b.Min, 100) || !approxEq(b.Max, 400) {
		t.Fatalf("aggregates = %+v, want count 4 sum 1000 min 100 max 400", b)
	}
	// Nearest-rank: p50 of 4 values is the 2nd, p95/p99 the 4th.
	if !approxEq(b.P50, 200) || !approxEq(b.P95, 400) || !approxEq(b.P99, 400) {
		t.Fatalf("percentiles = p50 %v p95 %v p99 %v, want 200/400/400", b.P50, b.P95, b.P99)
	}

	// Records lacking the metric are skipped, not zero-counted.
	bs, err = s.Query(Query{Metric: "lp_iterations"})
	if err != nil || len(bs) != 1 || bs[0].Count != 4 {
		t.Fatalf("metric skip: buckets %v err %v, want only the 4 solve records", bs, err)
	}

	// dur_ms aggregates Record.Dur: requests carry 1..10ms.
	bs, err = s.Query(Query{Kind: KindRequest, Metric: "dur_ms"})
	if err != nil || len(bs) != 1 {
		t.Fatalf("dur_ms query: %v buckets, err %v", len(bs), err)
	}
	if b := bs[0]; !approxEq(b.Sum, 55) || !approxEq(b.P50, 5) {
		t.Fatalf("dur_ms aggregates = %+v, want sum 55 p50 5", b)
	}
}

func TestQueryGroupingAndBuckets(t *testing.T) {
	s := seedStore(t)

	bs, err := s.Query(Query{Kind: KindRequest, GroupBy: "outcome"})
	if err != nil {
		t.Fatalf("group by outcome: %v", err)
	}
	// Deterministic order: groups sorted lexicographically.
	want := []struct {
		group string
		count int
	}{{"error", 2}, {"ok", 5}, {"shed", 3}}
	if len(bs) != len(want) {
		t.Fatalf("got %d groups, want %d: %+v", len(bs), len(want), bs)
	}
	for i, w := range want {
		if bs[i].Group != w.group || bs[i].Count != w.count {
			t.Fatalf("group %d = %s/%d, want %s/%d", i, bs[i].Group, bs[i].Count, w.group, w.count)
		}
	}

	// Epoch grouping: epoch 1 covers the first 5 records.
	bs, err = s.Query(Query{Kind: KindRequest, GroupBy: "epoch"})
	if err != nil || len(bs) != 2 || bs[0].Group != "1" || bs[0].Count != 5 {
		t.Fatalf("group by epoch: %+v err %v, want epochs 1 and 2 with 5 each", bs, err)
	}

	// Minute buckets over the request stream (10s spacing): 12:00 holds
	// 6 records, 12:01 holds 4; buckets sorted by start.
	bs, err = s.Query(Query{Kind: KindRequest, Bucket: time.Minute})
	if err != nil || len(bs) != 2 {
		t.Fatalf("bucketed query: %+v err %v, want 2 buckets", bs, err)
	}
	if bs[0].Count != 6 || bs[1].Count != 4 {
		t.Fatalf("bucket counts = %d,%d, want 6,4", bs[0].Count, bs[1].Count)
	}
	if !bs[0].Start.Equal(t0()) || !bs[1].Start.Equal(t0().Add(time.Minute)) {
		t.Fatalf("bucket starts = %v,%v, want %v,%v", bs[0].Start, bs[1].Start, t0(), t0().Add(time.Minute))
	}

	if _, err := s.Query(Query{GroupBy: "nonsense"}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("unknown group_by error = %v, want ErrBadQuery", err)
	}
}

func TestQueryDeterministic(t *testing.T) {
	s := seedStore(t)
	q := Query{Kind: KindRequest, Bucket: time.Minute, GroupBy: "outcome", Metric: "dur_ms"}
	first, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatalf("run %d returned %d buckets, first returned %d", i, len(again), len(first))
		}
		for j := range first {
			a, b := first[j], again[j]
			if a.Start != b.Start || a.Group != b.Group || a.Count != b.Count ||
				!approxEq(a.Sum, b.Sum) || !approxEq(a.P50, b.P50) || !approxEq(a.P95, b.P95) || !approxEq(a.P99, b.P99) {
				t.Fatalf("run %d bucket %d differs: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

func TestQuerySurvivesReopen(t *testing.T) {
	// The same aggregation over the same records must hold across a
	// kill-restart mid-segment.
	dir := t.TempDir()
	s := mustOpen(t, dir, StoreConfig{SegmentRecords: 3})
	for i := 0; i < 8; i++ {
		s.Emit(Record{
			Time:   t0().Add(time.Duration(i) * time.Second),
			Kind:   KindSolve,
			Fields: map[string]float64{"lp_iterations": float64((i + 1) * 10)},
		})
	}
	q := Query{Kind: KindSolve, Metric: "lp_iterations"}
	before, err := s.Query(q)
	if err != nil || len(before) != 1 {
		t.Fatalf("pre-crash query: %+v err %v", before, err)
	}
	s.crash() // two sealed segments + a torn 2-record open segment

	s2 := mustOpen(t, dir, StoreConfig{SegmentRecords: 3})
	defer s2.Close()
	after, err := s2.Query(q)
	if err != nil || len(after) != 1 {
		t.Fatalf("post-recovery query: %+v err %v", after, err)
	}
	a, b := before[0], after[0]
	if a.Count != b.Count || !approxEq(a.Sum, b.Sum) || !approxEq(a.Min, b.Min) ||
		!approxEq(a.Max, b.Max) || !approxEq(a.P50, b.P50) || !approxEq(a.P99, b.P99) {
		t.Fatalf("aggregation changed across kill-restart: %+v vs %+v", a, b)
	}
}

func TestNearestRank(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{50, 5}, {95, 10}, {99, 10}, {100, 10}, {1, 1}, {10, 1}, {11, 2}}
	for _, c := range cases {
		if got := nearestRank(vals, c.p); !approxEq(got, c.want) {
			t.Errorf("nearestRank(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := nearestRank(nil, 50); !approxEq(got, 0) {
		t.Errorf("nearestRank(empty) = %v, want 0", got)
	}
	one := []float64{42}
	for _, p := range []float64{1, 50, 99} {
		if got := nearestRank(one, p); !approxEq(got, 42) {
			t.Errorf("nearestRank(single, p=%v) = %v, want 42", p, got)
		}
	}
}

func TestSnapshotEmitter(t *testing.T) {
	snap := NewSnapshot()
	snap.Emit(Record{Kind: KindRequest, Name: "/v1/solve"})
	snap.Emit(Record{Kind: KindRequest, Name: "/v1/solve", Outcome: "shed"})
	snap.Emit(Record{Kind: KindRequest, Name: "/v1/plan"})
	snap.Emit(Record{Kind: KindSolve, Outcome: "error"})
	snap.Emit(Record{Kind: KindSolve, Epoch: 7, Fields: map[string]float64{"rounds": 3}})

	if got := snap.Total(); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
	if got := snap.Count(KindRequest, ""); got != 3 {
		t.Fatalf("request total = %d, want 3", got)
	}
	if got := snap.Count(KindRequest, "shed"); got != 1 {
		t.Fatalf("request shed = %d, want 1", got)
	}
	if got := snap.Count(KindSolve, "ok"); got != 1 {
		t.Fatalf("solve ok = %d, want 1", got)
	}
	nc := snap.NameCounts(KindRequest)
	if nc["/v1/solve"] != 2 || nc["/v1/plan"] != 1 {
		t.Fatalf("NameCounts = %v", nc)
	}
	last, ok := snap.Last(KindSolve)
	if !ok || last.Epoch != 7 {
		t.Fatalf("Last(solve) = %+v ok=%v, want the epoch-7 record", last, ok)
	}
	lastOK, ok := snap.LastOK(KindSolve)
	if !ok || lastOK.Epoch != 7 {
		t.Fatalf("LastOK(solve) = %+v ok=%v, want the epoch-7 record", lastOK, ok)
	}
	if _, ok := snap.LastOK(KindValidate); ok {
		t.Fatal("LastOK reports a kind that never emitted")
	}

	// Multi fans out to both sinks; Discard absorbs.
	snap2 := NewSnapshot()
	m := Multi(snap2, nil, Discard)
	m.Emit(Record{Kind: KindPublish})
	if snap2.Total() != 1 {
		t.Fatalf("Multi did not reach the snapshot: total %d", snap2.Total())
	}
}
