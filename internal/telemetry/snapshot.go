package telemetry

import "sync"

// Snapshot is an Emitter that maintains point-in-time views over the
// record stream: per-kind/outcome counters, per-name request counts,
// and the latest (and latest-successful) record of each kind. The
// serving layer's /debug/vars reads these, so the expvar surface is a
// projection of the same records the store persists — one schema, two
// views.
type Snapshot struct {
	mu       sync.Mutex
	counts   map[Kind]map[string]int64 // kind → outcome → count
	byName   map[Kind]map[string]int64 // kind → name → count
	last     map[Kind]Record
	lastOK   map[Kind]Record
	appended int64
}

// NewSnapshot builds an empty snapshot tracker.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		counts: map[Kind]map[string]int64{},
		byName: map[Kind]map[string]int64{},
		last:   map[Kind]Record{},
		lastOK: map[Kind]Record{},
	}
}

// Emit implements Emitter.
func (s *Snapshot) Emit(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appended++
	oc := s.counts[r.Kind]
	if oc == nil {
		oc = map[string]int64{}
		s.counts[r.Kind] = oc
	}
	outcome := r.OutcomeOrOK()
	oc[outcome]++
	if r.Name != "" {
		nc := s.byName[r.Kind]
		if nc == nil {
			nc = map[string]int64{}
			s.byName[r.Kind] = nc
		}
		nc[r.Name]++
	}
	s.last[r.Kind] = r
	if outcome == "ok" {
		s.lastOK[r.Kind] = r
	}
}

// Count returns how many records of the kind ended with the outcome
// ("" sums every outcome).
func (s *Snapshot) Count(k Kind, outcome string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if outcome != "" {
		return s.counts[k][outcome]
	}
	var total int64
	for _, n := range s.counts[k] {
		total += n
	}
	return total
}

// NameCounts returns a copy of the per-name counters for a kind.
func (s *Snapshot) NameCounts(k Kind) map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.byName[k]))
	for name, n := range s.byName[k] {
		out[name] = n
	}
	return out
}

// Last returns the most recent record of a kind.
func (s *Snapshot) Last(k Kind) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.last[k]
	return r, ok
}

// LastOK returns the most recent successful record of a kind — the
// one whose payload fields describe the last completed solve, sweep,
// or publication.
func (s *Snapshot) LastOK(k Kind) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.lastOK[k]
	return r, ok
}

// Total returns how many records the snapshot has seen.
func (s *Snapshot) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}
