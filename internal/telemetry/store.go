package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// StoreConfig parameterizes a Store. The zero value of every field has
// a serviceable default.
type StoreConfig struct {
	// SegmentRecords seals the active segment after this many records
	// (default 1024).
	SegmentRecords int
	// RetainSegments keeps only the newest K sealed segments and the
	// newest K quarantined (*.corrupt) files (default 64; negative
	// disables retention). The open segment never counts against it.
	RetainSegments int
	// FlushInterval is the background fsync cadence for the active
	// segment (default 1s; negative disables the flusher — Emit still
	// writes through the OS, Sync and seals still fsync).
	FlushInterval time.Duration
	// MemoryRecords bounds the in-memory ring of a memory-only store
	// (dir "") — oldest records are dropped beyond it (default
	// 4×SegmentRecords). Ignored for persistent stores, whose ring
	// holds exactly the open segment.
	MemoryRecords int
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.SegmentRecords <= 0 {
		c.SegmentRecords = 1024
	}
	if c.RetainSegments == 0 {
		c.RetainSegments = 64
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = time.Second
	}
	if c.MemoryRecords <= 0 {
		c.MemoryRecords = 4 * c.SegmentRecords
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// StoreStats is a point-in-time operational snapshot of a store.
type StoreStats struct {
	Dir         string `json:"dir,omitempty"`
	NextSeq     uint64 `json:"next_seq"`
	Appended    uint64 `json:"appended"`
	Sealed      uint64 `json:"sealed_segments"`
	Quarantined uint64 `json:"quarantined_segments"`
	Salvaged    uint64 `json:"salvaged_records"`
	Dropped     uint64 `json:"dropped_records"`
	WriteErrors uint64 `json:"write_errors"`
}

// ErrStoreClosed reports an append or read against a closed store.
var ErrStoreClosed = errors.New("telemetry: store closed")

// Store is the append-only segmented record store. Records are
// appended to an active `seg-<firstseq>.jsonl.open` temp file (one
// JSON record per line) and mirrored in memory; when the segment
// fills, it is sealed — fsync, atomic rename to `seg-<firstseq>.jsonl`,
// directory fsync — and retention prunes sealed segments beyond the
// newest K. Opening a directory recovers crash state: the decodable
// prefix of a torn open segment is salvaged into a sealed segment, and
// sealed segments that no longer decode are quarantined to *.corrupt.
//
// A Store with an empty dir is memory-only: a bounded ring with the
// same Emit/Query/Tail surface and no persistence.
type Store struct {
	dir string
	cfg StoreConfig

	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	openStart uint64 // seq of the open segment's first record
	openCount int
	nextSeq   uint64
	mem       []Record // open-segment mirror (disk) or bounded ring (memory-only)
	memStart  uint64   // seq of mem[0] (valid when len(mem) > 0)
	notify    chan struct{}
	closed    bool

	appended    uint64
	sealedN     uint64
	quarantined uint64
	salvagedN   uint64
	dropped     uint64
	writeErrors uint64

	done        chan struct{}
	flusherDone chan struct{}
}

const (
	segPrefix  = "seg-"
	segSuffix  = ".jsonl"
	openSuffix = ".open"
)

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, firstSeq, segSuffix)
}

// segStart parses the first-record sequence number out of a sealed
// segment file name.
func segStart(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Open opens (creating if needed) a telemetry store rooted at dir,
// running crash recovery first. An empty dir opens a memory-only
// store.
func Open(dir string, cfg StoreConfig) (*Store, error) {
	cfg = cfg.withDefaults()
	s := &Store{
		dir:         dir,
		cfg:         cfg,
		nextSeq:     1,
		notify:      make(chan struct{}),
		done:        make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	if dir == "" {
		close(s.flusherDone) // no flusher to join
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: creating store dir: %w", err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if cfg.FlushInterval > 0 {
		go s.flushLoop()
	} else {
		close(s.flusherDone)
	}
	return s, nil
}

// recover scans the store directory: torn open segments are salvaged
// (decodable prefix re-sealed, the rest discarded), sealed segments
// that fail to decode are quarantined to *.corrupt, and the next
// sequence number resumes after the newest surviving record.
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("telemetry: reading store dir: %w", err)
	}
	var maxSeq uint64
	for _, e := range entries {
		name := e.Name()
		path := filepath.Join(s.dir, name)
		switch {
		case strings.HasSuffix(name, segSuffix+openSuffix):
			// A crash left an open segment behind. Salvage the
			// decodable prefix into a sealed segment.
			recs, _ := decodeSegment(path)
			if len(recs) == 0 {
				s.quarantine(path)
				continue
			}
			final := strings.TrimSuffix(path, openSuffix)
			if err := writeSealed(final, recs); err != nil {
				s.cfg.Logf("telemetry: salvaging %s failed: %v", name, err)
				s.quarantine(path)
				continue
			}
			if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
				s.cfg.Logf("telemetry: removing salvaged open segment %s: %v", name, err)
			}
			s.salvagedN += uint64(len(recs))
			s.sealedN++
			if last := recs[len(recs)-1].Seq; last > maxSeq {
				maxSeq = last
			}
			s.cfg.Logf("telemetry: salvaged %d records from torn segment %s", len(recs), name)
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			recs, derr := decodeSegment(path)
			if derr != nil || len(recs) == 0 {
				s.cfg.Logf("telemetry: quarantining undecodable segment %s: %v", name, derr)
				s.quarantine(path)
				continue
			}
			if last := recs[len(recs)-1].Seq; last > maxSeq {
				maxSeq = last
			}
		}
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("telemetry: syncing store dir after recovery: %w", err)
	}
	s.nextSeq = maxSeq + 1
	return s.retainLocked()
}

// quarantine renames a damaged file to *.corrupt so the next open does
// not trip over it again.
func (s *Store) quarantine(path string) {
	if err := os.Rename(path, path+".corrupt"); err != nil && !errors.Is(err, fs.ErrNotExist) {
		s.cfg.Logf("telemetry: quarantine rename of %s failed: %v", path, err)
		return
	}
	s.quarantined++
}

// decodeSegment reads a segment file, returning the longest decodable
// prefix of records and an error if any trailing content failed to
// decode.
func decodeSegment(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			return recs, fmt.Errorf("undecodable record after %d good ones: %w", len(recs), err)
		}
		if r.Seq == 0 {
			return recs, fmt.Errorf("record without sequence number after %d good ones", len(recs))
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return recs, err
	}
	return recs, nil
}

// writeSealed writes records to a sealed segment durably: temp file in
// the same directory, fsync, atomic rename.
func writeSealed(path string, recs []Record) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "seg-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	w := bufio.NewWriter(tmp)
	for _, r := range recs {
		data, err := json.Marshal(r)
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// flushLoop periodically flushes and fsyncs the active segment so a
// crash loses at most FlushInterval of buffered records. It is joined
// by Close via the done/flusherDone pair.
func (s *Store) flushLoop() {
	defer close(s.flusherDone)
	ticker := time.NewTicker(s.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			if err := s.Sync(); err != nil && !errors.Is(err, ErrStoreClosed) {
				s.mu.Lock()
				s.writeErrors++
				s.mu.Unlock()
				s.cfg.Logf("telemetry: background flush: %v", err)
			}
		}
	}
}

// Emit appends a record to the store, stamping its time (when zero)
// and sequence number. Append errors degrade durability, never the
// caller: they are logged and counted, and the record stays queryable
// from memory. Emit implements Emitter.
func (s *Store) Emit(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if r.Time.IsZero() {
		r.Time = time.Now().UTC()
	}
	r.Seq = s.nextSeq
	s.nextSeq++
	s.appended++

	if s.dir != "" {
		if err := s.appendDiskLocked(r); err != nil {
			s.writeErrors++
			s.cfg.Logf("telemetry: appending record %d: %v", r.Seq, err)
		}
	}
	if len(s.mem) == 0 {
		s.memStart = r.Seq
	}
	s.mem = append(s.mem, r)
	if s.dir == "" && len(s.mem) > s.cfg.MemoryRecords {
		drop := len(s.mem) - s.cfg.MemoryRecords
		s.mem = append(s.mem[:0], s.mem[drop:]...)
		s.memStart += uint64(drop)
		s.dropped += uint64(drop)
	}

	// Wake tail waiters.
	close(s.notify)
	s.notify = make(chan struct{})

	if s.dir != "" && s.openCount >= s.cfg.SegmentRecords {
		if err := s.sealLocked(); err != nil {
			s.writeErrors++
			s.cfg.Logf("telemetry: sealing segment: %v", err)
		}
	}
}

// appendDiskLocked writes one record line to the active segment,
// opening a fresh one if needed. Caller holds mu.
func (s *Store) appendDiskLocked(r Record) error {
	if s.f == nil {
		path := filepath.Join(s.dir, segName(r.Seq)+openSuffix)
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		s.f = f
		s.w = bufio.NewWriter(f)
		s.openStart = r.Seq
		s.openCount = 0
	}
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		return err
	}
	s.openCount++
	return nil
}

// sealLocked closes the active segment durably: flush, fsync, atomic
// rename from *.open to the final name, directory fsync, then
// retention. Caller holds mu.
func (s *Store) sealLocked() error {
	if s.f == nil {
		return nil
	}
	openPath := filepath.Join(s.dir, segName(s.openStart)+openSuffix)
	finalPath := filepath.Join(s.dir, segName(s.openStart))
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return err
	}
	s.f, s.w = nil, nil
	s.openCount = 0
	if err := os.Rename(openPath, finalPath); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.sealedN++
	// The sealed segment is on disk; the memory mirror resets to track
	// only the (not yet started) next open segment.
	s.mem = s.mem[:0]
	return s.retainLocked()
}

// retainLocked prunes sealed segments and quarantined files beyond the
// newest RetainSegments. Caller holds mu (or runs during Open, before
// concurrency starts).
func (s *Store) retainLocked() error {
	keep := s.cfg.RetainSegments
	if keep <= 0 || s.dir == "" {
		return nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("telemetry: reading store dir for retention: %w", err)
	}
	var sealed, corrupt []string
	for _, e := range entries {
		n := e.Name()
		switch {
		case strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix):
			sealed = append(sealed, n)
		case strings.HasSuffix(n, ".corrupt"):
			corrupt = append(corrupt, n)
		}
	}
	deleted := 0
	for _, group := range [][]string{sealed, corrupt} {
		sort.Strings(group) // zero-padded seq makes newest lexicographic
		for _, name := range group[:max(0, len(group)-keep)] {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return fmt.Errorf("telemetry: deleting %s: %w", name, err)
			}
			deleted++
		}
	}
	if deleted > 0 {
		if err := syncDir(s.dir); err != nil {
			return fmt.Errorf("telemetry: syncing store dir after retention: %w", err)
		}
	}
	return nil
}

// Sync flushes and fsyncs the active segment. The background flusher
// calls it on its cadence; callers that need a durability point (e.g.
// a batch ingest about to exit) may call it directly.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	if s.f == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close seals the active segment and stops the background flusher.
// Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	close(s.done)
	<-s.flusherDone

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sealLocked(); err != nil {
		s.cfg.Logf("telemetry: sealing on close: %v", err)
		return err
	}
	return nil
}

// Writable probes whether the store directory still accepts writes;
// /healthz surfaces the result. A memory-only store is always
// writable.
func (s *Store) Writable() error {
	if s.dir == "" {
		return nil
	}
	f, err := os.CreateTemp(s.dir, ".probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

// Persistent reports whether the store writes segments to disk.
func (s *Store) Persistent() bool { return s.dir != "" }

// Stats snapshots the store's operational counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Dir:         s.dir,
		NextSeq:     s.nextSeq,
		Appended:    s.appended,
		Sealed:      s.sealedN,
		Quarantined: s.quarantined,
		Salvaged:    s.salvagedN,
		Dropped:     s.dropped,
		WriteErrors: s.writeErrors,
	}
}

// scanLocked streams every stored record with Seq > after, in sequence
// order: sealed segments from disk first, then the in-memory mirror.
// fn returning false stops the scan. Caller holds mu.
func (s *Store) scanLocked(after uint64, fn func(Record) bool) error {
	if s.dir != "" {
		entries, err := os.ReadDir(s.dir)
		if err != nil {
			return fmt.Errorf("telemetry: reading store dir: %w", err)
		}
		var names []string
		for _, e := range entries {
			n := e.Name()
			if strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		for i, name := range names {
			// Skip a segment wholesale when the next segment starts at
			// or before the cursor — every record in it is older.
			if i+1 < len(names) {
				if next, ok := segStart(names[i+1]); ok && next <= after+1 {
					continue
				}
			} else if len(s.mem) > 0 && s.memStart <= after+1 {
				continue
			}
			recs, derr := decodeSegment(filepath.Join(s.dir, name))
			if derr != nil {
				// A sealed segment going bad under a live store is disk
				// trouble; surface the salvageable prefix and log.
				s.cfg.Logf("telemetry: reading sealed segment %s: %v", name, derr)
			}
			for _, r := range recs {
				if r.Seq <= after {
					continue
				}
				if r.Seq >= s.memStart && len(s.mem) > 0 {
					continue // open-segment records come from memory
				}
				if !fn(r) {
					return nil
				}
			}
		}
	}
	for _, r := range s.mem {
		if r.Seq <= after {
			continue
		}
		if !fn(r) {
			return nil
		}
	}
	return nil
}

// ReadSince returns up to limit records with Seq > after in sequence
// order, plus the cursor to pass next (the last returned record's
// Seq, or after when nothing new exists). limit <= 0 means no bound.
func (s *Store) ReadSince(after uint64, limit int) ([]Record, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, after, ErrStoreClosed
	}
	var out []Record
	err := s.scanLocked(after, func(r Record) bool {
		out = append(out, r)
		return limit <= 0 || len(out) < limit
	})
	next := after
	if len(out) > 0 {
		next = out[len(out)-1].Seq
	}
	return out, next, err
}

// Tail long-polls for records with Seq > after: it returns immediately
// when some exist, otherwise blocks until a new record arrives or ctx
// ends (returning an empty batch and the unchanged cursor — a timeout
// is a normal empty poll, not an error).
func (s *Store) Tail(ctx context.Context, after uint64, limit int) ([]Record, uint64, error) {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, after, ErrStoreClosed
		}
		latest := s.nextSeq - 1
		ch := s.notify
		s.mu.Unlock()
		if latest > after {
			return s.ReadSince(after, limit)
		}
		select {
		case <-ctx.Done():
			return nil, after, nil
		case <-ch:
		}
	}
}
