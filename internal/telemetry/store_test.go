package telemetry

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// crash simulates a process death mid-segment: buffered bytes reach the
// OS (a crash after write(2) but before any fsync/rename), the open
// segment is never sealed, and the flusher just stops. The next Open on
// the same directory must salvage the decodable prefix.
func (s *Store) crash() {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	if s.w != nil {
		s.w.Flush()
	}
	if s.f != nil {
		s.f.Close()
	}
	s.f, s.w = nil, nil
	s.mu.Unlock()
	if !alreadyClosed {
		close(s.done)
	}
	<-s.flusherDone
}

func mustOpen(t *testing.T, dir string, cfg StoreConfig) *Store {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open(%q): %v", dir, err)
	}
	return s
}

func emitN(s *Store, n int, kind Kind) {
	for i := 0; i < n; i++ {
		s.Emit(Record{Kind: kind, Name: "n", Fields: map[string]float64{"i": float64(i)}})
	}
}

func readAll(t *testing.T, s *Store) []Record {
	t.Helper()
	recs, _, err := s.ReadSince(0, 0)
	if err != nil {
		t.Fatalf("ReadSince: %v", err)
	}
	return recs
}

func listSegments(t *testing.T, dir, suffix string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), suffix) {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, StoreConfig{SegmentRecords: 100})
	emitN(s, 10, KindRequest)

	recs := readAll(t, s)
	if len(recs) != 10 {
		t.Fatalf("got %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, i+1)
		}
		if r.Time.IsZero() {
			t.Fatalf("record %d missing a stamped time", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}

	// Close seals the open segment; a reopen must see everything and
	// resume the sequence.
	s2 := mustOpen(t, dir, StoreConfig{SegmentRecords: 100})
	defer s2.Close()
	recs = readAll(t, s2)
	if len(recs) != 10 {
		t.Fatalf("after reopen got %d records, want 10", len(recs))
	}
	s2.Emit(Record{Kind: KindRequest})
	recs = readAll(t, s2)
	if got := recs[len(recs)-1].Seq; got != 11 {
		t.Fatalf("sequence did not resume: new record has seq %d, want 11", got)
	}
}

func TestStoreSealAndRetention(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, StoreConfig{SegmentRecords: 4, RetainSegments: 2})
	defer s.Close()
	emitN(s, 19, KindRequest) // 4 sealed segments of 4, plus 3 in the open one

	sealed := listSegments(t, dir, segSuffix)
	if len(sealed) != 2 {
		t.Fatalf("retention kept %d sealed segments (%v), want 2", len(sealed), sealed)
	}
	open := listSegments(t, dir, openSuffix)
	if len(open) != 1 {
		t.Fatalf("got %d open segments (%v), want 1", len(open), open)
	}

	// The retained segments are the newest: seqs 9..16 on disk, 17..19
	// in the open segment.
	recs := readAll(t, s)
	if len(recs) != 11 {
		t.Fatalf("got %d records after retention, want 11", len(recs))
	}
	if recs[0].Seq != 9 || recs[len(recs)-1].Seq != 19 {
		t.Fatalf("retained range [%d,%d], want [9,19]", recs[0].Seq, recs[len(recs)-1].Seq)
	}

	// Cursor reads resume exactly where they left off.
	first, cur, err := s.ReadSince(0, 5)
	if err != nil || len(first) != 5 || cur != 13 {
		t.Fatalf("ReadSince(0,5) = %d recs, cursor %d, err %v; want 5, 13, nil", len(first), cur, err)
	}
	rest, cur2, err := s.ReadSince(cur, 0)
	if err != nil || len(rest) != 6 || cur2 != 19 {
		t.Fatalf("ReadSince(%d,0) = %d recs, cursor %d, err %v; want 6, 19, nil", cur, len(rest), cur2, err)
	}
}

func TestStoreCrashRecoverySalvagesTornSegment(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, StoreConfig{SegmentRecords: 100})
	emitN(s, 7, KindSolve)
	s.crash() // dies mid-segment: no seal, no rename

	if got := listSegments(t, dir, openSuffix); len(got) != 1 {
		t.Fatalf("crash left %d open segments, want 1", len(got))
	}

	s2 := mustOpen(t, dir, StoreConfig{SegmentRecords: 100})
	defer s2.Close()
	recs := readAll(t, s2)
	if len(recs) != 7 {
		t.Fatalf("recovered %d records, want 7", len(recs))
	}
	if got := listSegments(t, dir, openSuffix); len(got) != 0 {
		t.Fatalf("recovery left torn open segments behind: %v", got)
	}
	st := s2.Stats()
	if st.Salvaged != 7 {
		t.Fatalf("stats report %d salvaged records, want 7", st.Salvaged)
	}
	if st.NextSeq != 8 {
		t.Fatalf("next seq %d after recovery, want 8", st.NextSeq)
	}
}

func TestStoreCrashRecoveryDropsTornTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, StoreConfig{SegmentRecords: 100})
	emitN(s, 5, KindSolve)
	s.crash()

	// Simulate a write torn mid-record: garbage with no newline at the
	// tail of the open segment.
	open := listSegments(t, dir, openSuffix)
	if len(open) != 1 {
		t.Fatalf("want one open segment, got %v", open)
	}
	path := filepath.Join(dir, open[0])
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"2026-01-01T00:00:00Z","seq":6,"ki`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, dir, StoreConfig{SegmentRecords: 100})
	defer s2.Close()
	recs := readAll(t, s2)
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want the 5-record decodable prefix", len(recs))
	}
	if st := s2.Stats(); st.NextSeq != 6 {
		t.Fatalf("next seq %d, want 6 (torn tail discarded)", st.NextSeq)
	}
}

func TestStoreQuarantinesUndecodableSealedSegment(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, StoreConfig{SegmentRecords: 4})
	emitN(s, 9, KindRequest) // seals two segments
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	sealed := listSegments(t, dir, segSuffix)
	if len(sealed) < 2 {
		t.Fatalf("want at least 2 sealed segments, got %v", sealed)
	}
	// Rot the first (oldest) sealed segment from its first byte.
	if err := os.WriteFile(filepath.Join(dir, sealed[0]), []byte("not json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, StoreConfig{SegmentRecords: 4})
	defer s2.Close()
	if got := listSegments(t, dir, ".corrupt"); len(got) != 1 {
		t.Fatalf("quarantine produced %d .corrupt files (%v), want 1", len(got), got)
	}
	if st := s2.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats report %d quarantined, want 1", st.Quarantined)
	}
	// The surviving records (seqs 5..9) still read back in order.
	recs := readAll(t, s2)
	if len(recs) != 5 || recs[0].Seq != 5 || recs[4].Seq != 9 {
		t.Fatalf("surviving records wrong: %d recs, range [%d,%d]; want 5 in [5,9]",
			len(recs), recs[0].Seq, recs[len(recs)-1].Seq)
	}
}

func TestStoreMemoryOnly(t *testing.T) {
	s := mustOpen(t, "", StoreConfig{MemoryRecords: 8})
	defer s.Close()
	if s.Persistent() {
		t.Fatal("memory-only store claims to be persistent")
	}
	if err := s.Writable(); err != nil {
		t.Fatalf("memory-only store not writable: %v", err)
	}
	emitN(s, 20, KindRequest)
	recs := readAll(t, s)
	if len(recs) != 8 {
		t.Fatalf("ring holds %d records, want 8", len(recs))
	}
	if recs[0].Seq != 13 || recs[7].Seq != 20 {
		t.Fatalf("ring range [%d,%d], want [13,20]", recs[0].Seq, recs[7].Seq)
	}
	if st := s.Stats(); st.Dropped != 12 {
		t.Fatalf("stats report %d dropped, want 12", st.Dropped)
	}
}

func TestStoreTail(t *testing.T) {
	s := mustOpen(t, "", StoreConfig{})
	defer s.Close()

	// A context that expires with nothing new is a normal empty poll.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	recs, cur, err := s.Tail(ctx, 0, 0)
	cancel()
	if err != nil || len(recs) != 0 || cur != 0 {
		t.Fatalf("empty tail = %d recs, cursor %d, err %v; want 0, 0, nil", len(recs), cur, err)
	}

	// A record emitted while a tail is parked wakes it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(10 * time.Millisecond)
		s.Emit(Record{Kind: KindPublish, Epoch: 3})
	}()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	recs, cur, err = s.Tail(ctx2, 0, 0)
	<-done
	if err != nil || len(recs) != 1 || cur != 1 {
		t.Fatalf("tail after emit = %d recs, cursor %d, err %v; want 1, 1, nil", len(recs), cur, err)
	}
	if recs[0].Kind != KindPublish || recs[0].Epoch != 3 {
		t.Fatalf("tailed record = %+v, want publish epoch 3", recs[0])
	}

	// Tail with a satisfied cursor returns immediately.
	recs, cur, err = s.Tail(context.Background(), 0, 0)
	if err != nil || len(recs) != 1 || cur != 1 {
		t.Fatalf("tail with backlog = %d recs, cursor %d, err %v; want 1, 1, nil", len(recs), cur, err)
	}
}

func TestStoreClosedErrors(t *testing.T) {
	s := mustOpen(t, "", StoreConfig{})
	s.Emit(Record{Kind: KindRequest})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, err := s.ReadSince(0, 0); err != ErrStoreClosed {
		t.Fatalf("ReadSince on closed store: %v, want ErrStoreClosed", err)
	}
	if _, _, err := s.Tail(context.Background(), 0, 0); err != ErrStoreClosed {
		t.Fatalf("Tail on closed store: %v, want ErrStoreClosed", err)
	}
	s.Emit(Record{Kind: KindRequest}) // must not panic or deadlock
}

func TestStoreWritableProbe(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, StoreConfig{})
	defer s.Close()
	if err := s.Writable(); err != nil {
		t.Fatalf("fresh store not writable: %v", err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatalf("chmod: %v", err)
	}
	defer os.Chmod(dir, 0o755)
	if os.Geteuid() == 0 {
		t.Skip("running as root: read-only directory modes are not enforced")
	}
	if err := s.Writable(); err == nil {
		t.Fatal("Writable succeeded on a read-only directory")
	}
}
