// Package telemetry is the unified observability tier: one record
// model from solver to fleet, an append-only segmented local store,
// and a deterministic query/aggregation engine.
//
// Everything that used to be an ad-hoc stats surface — core.SolveStats
// behind a plan, routing.SweepStats behind a validation sweep,
// mcf.SweepStats behind an optimal sweep, the per-server expvar maps,
// bench JSON files under results/ — flows through the one Record
// schema here. A Record is a point event (a request served, a solve
// finished, an epoch published, a sync round, a lease grant, a
// failover, a benchmark run) with typed dimensions (Kind, Source,
// Name, Scheme, Outcome) and numeric payload (Epoch, Rung, Dur, and a
// flat Fields map whose keys come from the engines' Metrics()
// methods).
//
// The store appends records to newline-delimited JSON segments with
// the same crash-safety discipline as the checkpoint store: the active
// segment is a *.open temp file in the store directory, sealed by
// fsync + atomic rename (+ directory fsync) once full; recovery
// salvages the decodable prefix of a torn open segment and quarantines
// undecodable sealed segments to *.corrupt instead of crash-looping.
// Retention keeps the newest K sealed segments. A store opened with an
// empty directory runs memory-only (bounded ring, no persistence) so
// every server has a queryable record stream even without a state dir.
//
// See DESIGN.md §16 for the record schema, segment format, retention
// and query semantics.
package telemetry

import "time"

// Kind is a record's event type — the primary typed dimension every
// query filters or groups on.
type Kind string

// The record kinds emitted across the system. The set is open (the
// store treats Kind as an opaque dimension) but these are the ones the
// serving stack produces.
const (
	// KindRequest is one HTTP request served by pcfd (Name is the
	// endpoint, Outcome ok/shed/error, Epoch the served plan's epoch).
	KindRequest Kind = "request"
	// KindSolve is one plan solve attempt (Fields from
	// core.SolveStats.Metrics(), Rung the breaker's ladder entry).
	KindSolve Kind = "solve"
	// KindValidate is one full validation sweep (Fields from
	// routing.SweepStats.Metrics()).
	KindValidate Kind = "validate"
	// KindMCF is one optimal-under-failures sweep (Fields from
	// mcf.SweepStats.Metrics()).
	KindMCF Kind = "mcf"
	// KindPublish is one registry publication or recovery (Epoch is
	// the new epoch; Fields carry the validation sweep metrics and the
	// plan value).
	KindPublish Kind = "publish"
	// KindBreaker is a circuit-breaker level transition (Fields carry
	// the new level and trip count).
	KindBreaker Kind = "breaker"
	// KindSync is one replica heartbeat/fetch round (Outcome
	// ok/error).
	KindSync Kind = "sync"
	// KindLease is a lease grant (planner side) or observation
	// (replica side; Outcome ok/stale).
	KindLease Kind = "lease"
	// KindPush is one planner envelope push attempt (Name is the
	// target URL).
	KindPush Kind = "push"
	// KindFailover is a front-end routing event (Outcome
	// retry/eject/no_backend).
	KindFailover Kind = "failover"
	// KindBench is one benchmark measurement ingested from a
	// scripts/bench.sh snapshot (Name is the benchmark, Fields carry
	// ns_per_op and friends).
	KindBench Kind = "bench"
)

// Record is the one event schema every telemetry producer emits.
// String dimensions identify what happened; numeric fields say how it
// went. The zero value of every field is omitted on the wire.
type Record struct {
	// Time is the event time (stamped by the store when zero).
	Time time.Time `json:"t"`
	// Seq is the store-assigned monotone sequence number; producers
	// leave it zero. It orders records totally and drives the tail
	// cursor.
	Seq uint64 `json:"seq,omitempty"`
	// Kind is the event type (see the Kind constants).
	Kind Kind `json:"kind"`
	// Source is the emitting component ("pcfd", "planner",
	// "replica-1", "frontend", "bench", ...).
	Source string `json:"src,omitempty"`
	// Name refines the kind: the endpoint for requests, the benchmark
	// for bench records, the push target for pushes.
	Name string `json:"name,omitempty"`
	// Scheme is the routing scheme involved, when one is.
	Scheme string `json:"scheme,omitempty"`
	// Outcome classifies how the event ended ("ok", "error", "shed",
	// "stale", ...). Empty means ok.
	Outcome string `json:"outcome,omitempty"`
	// Epoch is the plan epoch the record describes. For request
	// records it is the epoch of the plan that actually served the
	// request — never a newer one published mid-flight.
	Epoch uint64 `json:"epoch,omitempty"`
	// Rung is the solve-ladder rung (breaker skip level) in effect.
	Rung int `json:"rung,omitempty"`
	// Dur is the event duration.
	Dur time.Duration `json:"dur_ns,omitempty"`
	// Fields carries the numeric payload, keyed by the engines'
	// Metrics() names (lp_iterations, smw_hit_rate, mlu, ...).
	Fields map[string]float64 `json:"fields,omitempty"`
}

// OutcomeOrOK normalizes the outcome dimension: records emitted with
// an empty outcome mean "ok".
func (r Record) OutcomeOrOK() string {
	if r.Outcome == "" {
		return "ok"
	}
	return r.Outcome
}

// Field returns a payload field, 0 when absent.
func (r Record) Field(name string) float64 { return r.Fields[name] }

// Emitter is the typed sink every telemetry producer writes to.
// Implementations must be safe for concurrent use.
type Emitter interface {
	Emit(Record)
}

// EmitterFunc adapts a function to the Emitter interface.
type EmitterFunc func(Record)

// Emit implements Emitter.
func (f EmitterFunc) Emit(r Record) { f(r) }

// Discard drops every record; the zero-config default wherever an
// emitter is optional.
var Discard Emitter = EmitterFunc(func(Record) {})

// multi fans one record out to several emitters in order.
type multi []Emitter

func (m multi) Emit(r Record) {
	for _, e := range m {
		e.Emit(r)
	}
}

// Multi builds an emitter that forwards each record to every non-nil
// sink in order.
func Multi(sinks ...Emitter) Emitter {
	var out multi
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}
