package topology

import "errors"

// Typed validation failures. Graph construction from untrusted input
// goes through TryAddWeightedLink / ReadLinks, which report these
// sentinels (wrapped with position context) instead of panicking, so
// callers select their response with errors.Is. The panicking builder
// methods (AddLink, AddWeightedLink, ShortestPath's nonnegative-weight
// precondition) panic with errors wrapping the same sentinels; those
// panics are documented programmer-error preconditions, listed in the
// pcflint/nopanic allowlist (DESIGN.md §10).
var (
	// ErrSelfLoop reports a link whose endpoints are the same node.
	ErrSelfLoop = errors.New("topology: self loop")
	// ErrEndpointRange reports a link endpoint that is not an existing
	// node of the graph.
	ErrEndpointRange = errors.New("topology: link endpoint out of range")
	// ErrNegativeWeight reports a negative routing weight, which both
	// link construction and Dijkstra reject.
	ErrNegativeWeight = errors.New("topology: negative link weight")
	// ErrBadSplit reports a SplitSubLinks part count below 2.
	ErrBadSplit = errors.New("topology: SplitSubLinks needs parts >= 2")
)
