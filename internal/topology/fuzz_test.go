package topology

import (
	"math"
	"strings"
	"testing"
)

// FuzzReadLinks drives the topology parser with arbitrary input. The
// parser must never panic, and any graph it accepts must satisfy the
// construction invariants that the rest of the pipeline (pruning,
// tunnel selection, the LP builders) relies on: at least one link,
// positive finite capacities, no self loops, endpoints in range.
func FuzzReadLinks(f *testing.F) {
	seeds := []string{
		// The cmd/topogen format: "nodeA nodeB capacity" per line.
		"0 1 10\n1 2 10\n2 0 4\n",
		"# comment line\n\n0 1 2.5\n",
		"0 1 1\n0 1 1\n", // parallel links are legal
		"3 4 1e3\n",      // node ids need not appear in order
		"0 0 1\n",        // self loop: rejected
		"0 1 -1\n",       // nonpositive capacity: rejected
		"0 1 NaN\n",      // non-finite capacity: rejected
		"0 1 Inf\n",
		"1 2\n",       // short line: rejected
		"a b 1\n",     // non-numeric: rejected
		"-1 2 1\n",    // negative id: rejected
		"0 9999999 1", // id above the cap: rejected
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		// Cap input size: a single line may legally name node ids up to
		// 2^20, so huge inputs only slow the fuzzer down without
		// exercising new parser states.
		if len(in) > 1<<12 {
			return
		}
		g, err := ReadLinks(strings.NewReader(in), "fuzz")
		if err != nil {
			return
		}
		if g.NumLinks() == 0 {
			t.Fatal("accepted graph has no links")
		}
		for i := 0; i < g.NumLinks(); i++ {
			l := g.Link(LinkID(i))
			if !(l.Capacity > 0) || math.IsInf(l.Capacity, 0) {
				t.Fatalf("link %d: capacity %g not positive finite", i, l.Capacity)
			}
			if l.A == l.B {
				t.Fatalf("link %d: self loop at node %d", i, l.A)
			}
			if l.A < 0 || int(l.A) >= g.NumNodes() || l.B < 0 || int(l.B) >= g.NumNodes() {
				t.Fatalf("link %d: endpoints %d-%d outside %d nodes", i, l.A, l.B, g.NumNodes())
			}
			if !(l.Weight > 0) {
				t.Fatalf("link %d: weight %g not positive", i, l.Weight)
			}
		}
	})
}
