// Package topology provides the network graph model used throughout
// the PCF implementation: an undirected multigraph with per-link
// capacities, viewed as a set of directed arcs for routing. It includes
// the graph surgery the paper's evaluation performs (recursive
// one-degree pruning, splitting links into independently failing
// sub-links) and the path primitives the tunnel selector builds on.
package topology

import (
	"bufio"
	"container/heap"
	"fmt"
	"io"
	"math"
	"strings"
)

// NodeID identifies a node.
type NodeID int32

// LinkID identifies an undirected link. Links are the unit of failure.
type LinkID int32

// ArcID identifies a directed view of a link: arc 2*l goes from
// Link(l).A to Link(l).B, arc 2*l+1 the reverse.
type ArcID int32

// Link is an undirected capacitated link between two nodes.
type Link struct {
	ID       LinkID
	A, B     NodeID
	Capacity float64
	// Weight is the routing length used by shortest-path tunnel
	// selection. Defaults to 1 (hop count).
	Weight float64
}

// Forward returns the arc from A to B.
func (l Link) Forward() ArcID { return ArcID(2 * l.ID) }

// Reverse returns the arc from B to A.
func (l Link) Reverse() ArcID { return ArcID(2*l.ID + 1) }

// Pair is an ordered source-destination node pair.
type Pair struct {
	Src, Dst NodeID
}

func (p Pair) String() string { return fmt.Sprintf("(%d->%d)", p.Src, p.Dst) }

// Graph is an undirected multigraph. The zero value is an empty graph.
type Graph struct {
	Name  string
	names []string
	links []Link
	out   [][]ArcID // outgoing arcs per node (both directions of incident links)
}

// New returns an empty graph with the given name.
func New(name string) *Graph { return &Graph{Name: name} }

// AddNode adds a node and returns its ID.
func (g *Graph) AddNode(name string) NodeID {
	g.names = append(g.names, name)
	g.out = append(g.out, nil)
	return NodeID(len(g.names) - 1)
}

// AddLink adds an undirected link with the given capacity (same in both
// directions) and unit routing weight.
func (g *Graph) AddLink(a, b NodeID, capacity float64) LinkID {
	return g.AddWeightedLink(a, b, capacity, 1)
}

// AddWeightedLink adds a link with an explicit routing weight. It
// panics on invalid endpoints or a negative weight: the panicking
// builders exist for compile-time-fixed graphs (gadgets, synthesized
// topologies) where a violation is a programmer error. Use
// TryAddWeightedLink for untrusted input.
func (g *Graph) AddWeightedLink(a, b NodeID, capacity, weight float64) LinkID {
	id, err := g.TryAddWeightedLink(a, b, capacity, weight)
	if err != nil {
		//lint:ignore pcflint/nopanic documented precondition of the compile-time builder API; data paths use TryAddWeightedLink
		panic(err)
	}
	return id
}

// TryAddWeightedLink is AddWeightedLink with typed-error validation
// instead of panics: it rejects self loops (ErrSelfLoop), endpoints
// that are not existing nodes (ErrEndpointRange) and negative routing
// weights (ErrNegativeWeight). Graphs built exclusively through it
// satisfy the nonnegative-weight precondition of ShortestPath and
// KShortestPaths with a nil weight function.
func (g *Graph) TryAddWeightedLink(a, b NodeID, capacity, weight float64) (LinkID, error) {
	if a == b {
		return 0, fmt.Errorf("%w at node %d", ErrSelfLoop, a)
	}
	if a < 0 || b < 0 || int(a) >= len(g.names) || int(b) >= len(g.names) {
		return 0, fmt.Errorf("%w: link %d-%d in graph of %d nodes", ErrEndpointRange, a, b, len(g.names))
	}
	if weight < 0 {
		return 0, fmt.Errorf("%w: %g on link %d-%d", ErrNegativeWeight, weight, a, b)
	}
	l := Link{ID: LinkID(len(g.links)), A: a, B: b, Capacity: capacity, Weight: weight}
	g.links = append(g.links, l)
	g.out[a] = append(g.out[a], l.Forward())
	g.out[b] = append(g.out[b], l.Reverse())
	return l.ID, nil
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumLinks reports the number of undirected links.
func (g *Graph) NumLinks() int { return len(g.links) }

// NumArcs reports the number of directed arcs (2 per link).
func (g *Graph) NumArcs() int { return 2 * len(g.links) }

// NodeName returns the name of node n.
func (g *Graph) NodeName(n NodeID) string { return g.names[n] }

// Link returns the link record for id.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// Links returns a copy of the link slice.
func (g *Graph) Links() []Link { return append([]Link(nil), g.links...) }

// LinkOf returns the link an arc belongs to.
func LinkOf(a ArcID) LinkID { return LinkID(a / 2) }

// ArcEnds returns the tail and head node of an arc.
func (g *Graph) ArcEnds(a ArcID) (from, to NodeID) {
	l := g.links[a/2]
	if a%2 == 0 {
		return l.A, l.B
	}
	return l.B, l.A
}

// ArcCapacity returns the capacity available on an arc (equal to the
// underlying link capacity; links are full duplex).
func (g *Graph) ArcCapacity(a ArcID) float64 { return g.links[a/2].Capacity }

// OutArcs returns the outgoing arcs of node n. The returned slice must
// not be modified.
func (g *Graph) OutArcs(n NodeID) []ArcID { return g.out[n] }

// Degree returns the number of incident links of node n.
func (g *Graph) Degree(n NodeID) int { return len(g.out[n]) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name}
	c.names = append([]string(nil), g.names...)
	c.links = append([]Link(nil), g.links...)
	c.out = make([][]ArcID, len(g.out))
	for i := range g.out {
		c.out[i] = append([]ArcID(nil), g.out[i]...)
	}
	return c
}

// PruneDegreeOne recursively removes nodes of degree <= 1 (and their
// links), exactly as the paper's evaluation does so that no single link
// failure disconnects the network. It returns the pruned graph and a
// mapping from old node IDs to new ones (-1 if removed).
func (g *Graph) PruneDegreeOne() (*Graph, []NodeID) {
	alive := make([]bool, g.NumNodes())
	deg := make([]int, g.NumNodes())
	linkAlive := make([]bool, g.NumLinks())
	for i := range alive {
		alive[i] = true
	}
	for i := range linkAlive {
		linkAlive[i] = true
	}
	for _, l := range g.links {
		deg[l.A]++
		deg[l.B]++
	}
	queue := []NodeID{}
	for n := range deg {
		if deg[n] <= 1 {
			queue = append(queue, NodeID(n))
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if !alive[n] {
			continue
		}
		alive[n] = false
		for _, a := range g.out[n] {
			l := LinkOf(a)
			if !linkAlive[l] {
				continue
			}
			linkAlive[l] = false
			_, other := g.ArcEnds(a)
			deg[other]--
			if alive[other] && deg[other] <= 1 {
				queue = append(queue, other)
			}
		}
	}
	ng := New(g.Name)
	mapping := make([]NodeID, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		if alive[n] {
			mapping[n] = ng.AddNode(g.names[n])
		} else {
			mapping[n] = -1
		}
	}
	for _, l := range g.links {
		if linkAlive[l.ID] {
			ng.AddWeightedLink(mapping[l.A], mapping[l.B], l.Capacity, l.Weight)
		}
	}
	return ng, mapping
}

// SplitSubLinks splits every link into parallel independently failing
// sub-links each carrying an equal share of the capacity, as §5 of the
// paper does to study multiple simultaneous failures without
// disconnecting the topology. parts below 2 is reported as ErrBadSplit.
func (g *Graph) SplitSubLinks(parts int) (*Graph, error) {
	if parts < 2 {
		return nil, fmt.Errorf("%w, got %d", ErrBadSplit, parts)
	}
	ng := New(g.Name + "-split")
	for _, name := range g.names {
		ng.AddNode(name)
	}
	for _, l := range g.links {
		for p := 0; p < parts; p++ {
			ng.AddWeightedLink(l.A, l.B, l.Capacity/float64(parts), l.Weight)
		}
	}
	return ng, nil
}

// IsConnected reports whether the graph is connected, ignoring the
// links in dead.
func (g *Graph) IsConnected(dead map[LinkID]bool) bool {
	if g.NumNodes() == 0 {
		return true
	}
	seen := make([]bool, g.NumNodes())
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.out[n] {
			if dead != nil && dead[LinkOf(a)] {
				continue
			}
			_, to := g.ArcEnds(a)
			if !seen[to] {
				seen[to] = true
				count++
				stack = append(stack, to)
			}
		}
	}
	return count == g.NumNodes()
}

// Bridges returns the links whose single failure disconnects the graph
// (Tarjan's bridge-finding algorithm, iterative).
func (g *Graph) Bridges() []LinkID {
	n := g.NumNodes()
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	var bridges []LinkID
	timer := 0
	// Iterative DFS tracking the arc used to enter each node (to skip
	// only that parallel edge instance, keeping multigraph semantics).
	type frame struct {
		node   NodeID
		viaArc ArcID // arc used to reach node, or -1 for roots
		idx    int
	}
	for root := 0; root < n; root++ {
		if disc[root] != -1 {
			continue
		}
		stack := []frame{{NodeID(root), -1, 0}}
		disc[root] = timer
		low[root] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx < len(g.out[f.node]) {
				a := g.out[f.node][f.idx]
				f.idx++
				if f.viaArc >= 0 && LinkOf(a) == LinkOf(f.viaArc) {
					continue // don't traverse the entering link instance back
				}
				_, to := g.ArcEnds(a)
				if disc[to] == -1 {
					disc[to] = timer
					low[to] = timer
					timer++
					stack = append(stack, frame{to, a, 0})
				} else if disc[to] < low[f.node] {
					low[f.node] = disc[to]
				}
			} else {
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					parent := &stack[len(stack)-1]
					if low[f.node] < low[parent.node] {
						low[parent.node] = low[f.node]
					}
					if low[f.node] > disc[parent.node] {
						bridges = append(bridges, LinkOf(f.viaArc))
					}
				}
			}
		}
	}
	return bridges
}

// Path is a directed path represented by its arcs.
type Path struct {
	Arcs []ArcID
}

// Links returns the set of links the path uses.
func (p Path) Links() []LinkID {
	out := make([]LinkID, len(p.Arcs))
	for i, a := range p.Arcs {
		out[i] = LinkOf(a)
	}
	return out
}

// UsesLink reports whether the path traverses the given link (either
// direction).
func (p Path) UsesLink(l LinkID) bool {
	for _, a := range p.Arcs {
		if LinkOf(a) == l {
			return true
		}
	}
	return false
}

// Nodes reconstructs the node sequence of the path in graph g.
func (p Path) Nodes(g *Graph) []NodeID {
	if len(p.Arcs) == 0 {
		return nil
	}
	from, _ := g.ArcEnds(p.Arcs[0])
	nodes := []NodeID{from}
	for _, a := range p.Arcs {
		_, to := g.ArcEnds(a)
		nodes = append(nodes, to)
	}
	return nodes
}

type pqItem struct {
	node NodeID
	dist float64
}

type priorityQueue []pqItem

func (q priorityQueue) Len() int            { return len(q) }
func (q priorityQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q priorityQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *priorityQueue) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *priorityQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath runs Dijkstra from src to dst using the provided link
// weight function (nil means Link.Weight). Links for which banned
// returns true are skipped. Returns the path and true, or false if dst
// is unreachable.
func (g *Graph) ShortestPath(src, dst NodeID, weight func(LinkID) float64, banned func(LinkID) bool) (Path, bool) {
	n := g.NumNodes()
	dist := make([]float64, n)
	prev := make([]ArcID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	pq := &priorityQueue{{src, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, a := range g.out[u] {
			l := LinkOf(a)
			if banned != nil && banned(l) {
				continue
			}
			w := g.links[l].Weight
			if weight != nil {
				w = weight(l)
			}
			if w < 0 {
				//lint:ignore pcflint/nopanic Dijkstra precondition; graphs built via TryAddWeightedLink cannot carry negative weights, so only a buggy caller-supplied weight callback reaches this
				panic(fmt.Errorf("%w: weight callback returned %g for link %d", ErrNegativeWeight, w, l))
			}
			_, v := g.ArcEnds(a)
			if nd := dist[u] + w; nd < dist[v]-1e-15 {
				dist[v] = nd
				prev[v] = a
				heap.Push(pq, pqItem{v, nd})
			}
		}
	}
	if prev[dst] == -1 && src != dst {
		return Path{}, false
	}
	var rev []ArcID
	for at := dst; at != src; {
		a := prev[at]
		rev = append(rev, a)
		from, _ := g.ArcEnds(a)
		at = from
	}
	arcs := make([]ArcID, len(rev))
	for i := range rev {
		arcs[i] = rev[len(rev)-1-i]
	}
	return Path{Arcs: arcs}, true
}

// WidestPath returns the path from src to dst maximizing the minimum
// weight given by width (a "capacity" per link), used by the paper's
// logical-flow decomposition heuristic (§3.5). Links with width <= 0
// are unusable. Returns the path, its bottleneck width, and success.
func (g *Graph) WidestPath(src, dst NodeID, width func(ArcID) float64) (Path, float64, bool) {
	n := g.NumNodes()
	best := make([]float64, n)
	prev := make([]ArcID, n)
	done := make([]bool, n)
	for i := range best {
		best[i] = 0
		prev[i] = -1
	}
	best[src] = math.Inf(1)
	// Max-heap via negated widths in the min-heap.
	pq := &priorityQueue{{src, math.Inf(-1)}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, a := range g.out[u] {
			w := width(a)
			if w <= 0 {
				continue
			}
			_, v := g.ArcEnds(a)
			cand := math.Min(best[u], w)
			if cand > best[v]+1e-15 {
				best[v] = cand
				prev[v] = a
				heap.Push(pq, pqItem{v, -cand})
			}
		}
	}
	if src != dst && prev[dst] == -1 {
		return Path{}, 0, false
	}
	var rev []ArcID
	for at := dst; at != src; {
		a := prev[at]
		rev = append(rev, a)
		from, _ := g.ArcEnds(a)
		at = from
	}
	arcs := make([]ArcID, len(rev))
	for i := range rev {
		arcs[i] = rev[len(rev)-1-i]
	}
	return Path{Arcs: arcs}, best[dst], true
}

// AllPairs returns every ordered pair of distinct nodes.
func (g *Graph) AllPairs() []Pair {
	n := g.NumNodes()
	pairs := make([]Pair, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s != t {
				pairs = append(pairs, Pair{NodeID(s), NodeID(t)})
			}
		}
	}
	return pairs
}

// TotalCapacity sums the capacity over all links.
func (g *Graph) TotalCapacity() float64 {
	total := 0.0
	for _, l := range g.links {
		total += l.Capacity
	}
	return total
}

// KShortestPaths enumerates up to k distinct simple paths from src to
// dst in nondecreasing weight order (Yen's algorithm). A nil weight
// function uses Link.Weight.
func (g *Graph) KShortestPaths(src, dst NodeID, k int, weight func(LinkID) float64) []Path {
	if weight == nil {
		weight = func(l LinkID) float64 { return g.links[l].Weight }
	}
	pathCost := func(p Path) float64 {
		total := 0.0
		for _, a := range p.Arcs {
			total += weight(LinkOf(a))
		}
		return total
	}
	first, ok := g.ShortestPath(src, dst, weight, nil)
	if !ok {
		return nil
	}
	found := []Path{first}
	type candidate struct {
		path Path
		cost float64
	}
	var candidates []candidate
	seen := map[string]bool{pathKey(first): true}

	for len(found) < k {
		prev := found[len(found)-1]
		prevNodes := prev.Nodes(g)
		// Spur from each node of the previous path.
		for i := 0; i < len(prev.Arcs); i++ {
			spurNode := prevNodes[i]
			rootArcs := append([]ArcID(nil), prev.Arcs[:i]...)
			bannedLinks := map[LinkID]bool{}
			// Ban the next link of every found path sharing this root.
			for _, p := range found {
				if len(p.Arcs) > i && sameArcPrefix(p.Arcs, rootArcs, i) {
					bannedLinks[LinkOf(p.Arcs[i])] = true
				}
			}
			// Ban root nodes (other than the spur node) by banning all
			// their incident links, keeping paths simple.
			for _, nd := range prevNodes[:i] {
				for _, a := range g.out[nd] {
					bannedLinks[LinkOf(a)] = true
				}
			}
			spur, ok := g.ShortestPath(spurNode, dst, weight,
				func(l LinkID) bool { return bannedLinks[l] })
			if !ok {
				continue
			}
			total := Path{Arcs: append(append([]ArcID(nil), rootArcs...), spur.Arcs...)}
			key := pathKey(total)
			if seen[key] {
				continue
			}
			seen[key] = true
			candidates = append(candidates, candidate{total, pathCost(total)})
		}
		if len(candidates) == 0 {
			break
		}
		best := 0
		for i := 1; i < len(candidates); i++ {
			if candidates[i].cost < candidates[best].cost {
				best = i
			}
		}
		found = append(found, candidates[best].path)
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return found
}

func sameArcPrefix(a, b []ArcID, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pathKey(p Path) string {
	b := make([]byte, 0, 4*len(p.Arcs))
	for _, a := range p.Arcs {
		b = append(b, byte(a), byte(a>>8), byte(a>>16), byte(a>>24))
	}
	return string(b)
}

// ReadLinks parses a topology from the text format cmd/topogen emits:
// one "nodeA nodeB capacity" line per link (integer node ids; lines
// starting with '#' are comments). Node ids must be dense from 0.
func ReadLinks(r io.Reader, name string) (*Graph, error) {
	g := New(name)
	sc := bufio.NewScanner(r)
	ensure := func(n int) {
		for g.NumNodes() <= n {
			g.AddNode(fmt.Sprintf("n%d", g.NumNodes()))
		}
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var a, b int
		var capacity float64
		if _, err := fmt.Sscanf(line, "%d %d %g", &a, &b, &capacity); err != nil {
			return nil, fmt.Errorf("topology: line %d: %w", lineNo, err)
		}
		if a < 0 || b < 0 {
			return nil, fmt.Errorf("topology: line %d: negative node id", lineNo)
		}
		const maxNodeID = 1 << 20
		if a > maxNodeID || b > maxNodeID {
			return nil, fmt.Errorf("topology: line %d: node id exceeds %d", lineNo, maxNodeID)
		}
		// NaN compares false against everything, so a plain <= 0 test
		// would let "NaN" (which Sscanf %g accepts) through.
		if !(capacity > 0) || math.IsInf(capacity, 0) {
			return nil, fmt.Errorf("topology: line %d: capacity must be positive and finite", lineNo)
		}
		ensure(a)
		ensure(b)
		if _, err := g.TryAddWeightedLink(NodeID(a), NodeID(b), capacity, 1); err != nil {
			return nil, fmt.Errorf("topology: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g.NumLinks() == 0 {
		return nil, fmt.Errorf("topology: no links in input")
	}
	return g, nil
}
