package topology

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// triangle builds a 3-node cycle.
func triangle() *Graph {
	g := New("triangle")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddLink(a, b, 1)
	g.AddLink(b, c, 1)
	g.AddLink(a, c, 1)
	return g
}

func TestBasicConstruction(t *testing.T) {
	g := triangle()
	if g.NumNodes() != 3 || g.NumLinks() != 3 || g.NumArcs() != 6 {
		t.Fatalf("counts wrong: %d nodes %d links %d arcs", g.NumNodes(), g.NumLinks(), g.NumArcs())
	}
	l := g.Link(0)
	if from, to := g.ArcEnds(l.Forward()); from != l.A || to != l.B {
		t.Fatal("forward arc ends wrong")
	}
	if from, to := g.ArcEnds(l.Reverse()); from != l.B || to != l.A {
		t.Fatal("reverse arc ends wrong")
	}
	if g.Degree(0) != 2 {
		t.Fatalf("degree = %d", g.Degree(0))
	}
	//lint:ignore pcflint/floatcmp sum of the small integer capacities 1+2 is exact
	if g.TotalCapacity() != 3 {
		t.Fatalf("total capacity = %g", g.TotalCapacity())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := New("x")
	a := g.AddNode("a")
	g.AddLink(a, a, 1)
}

func TestShortestPathHopCount(t *testing.T) {
	// Path graph a-b-c-d plus shortcut a-d with high weight.
	g := New("p")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.AddLink(a, b, 1)
	g.AddLink(b, c, 1)
	g.AddLink(c, d, 1)
	short := g.AddWeightedLink(a, d, 1, 10)
	p, ok := g.ShortestPath(a, d, nil, nil)
	if !ok {
		t.Fatal("no path")
	}
	if len(p.Arcs) != 3 {
		t.Fatalf("path has %d hops, want 3", len(p.Arcs))
	}
	// With the long link banned... ban the 3 middle links instead to
	// force the shortcut.
	p2, ok := g.ShortestPath(a, d, nil, func(l LinkID) bool { return l != short })
	if !ok || len(p2.Arcs) != 1 || LinkOf(p2.Arcs[0]) != short {
		t.Fatalf("banned search wrong: %v", p2)
	}
	nodes := p.Nodes(g)
	if len(nodes) != 4 || nodes[0] != a || nodes[3] != d {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New("u")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddLink(a, b, 1)
	_ = c
	if _, ok := g.ShortestPath(a, c, nil, nil); ok {
		t.Fatal("expected unreachable")
	}
}

func TestWidestPath(t *testing.T) {
	// Two routes s->t: direct width 2, via m widths (5, 4) -> widest is 4.
	g := New("w")
	s := g.AddNode("s")
	m := g.AddNode("m")
	tt := g.AddNode("t")
	direct := g.AddLink(s, tt, 2)
	l1 := g.AddLink(s, m, 5)
	l2 := g.AddLink(m, tt, 4)
	width := func(a ArcID) float64 {
		switch LinkOf(a) {
		case direct:
			return 2
		case l1:
			return 5
		case l2:
			return 4
		}
		return 0
	}
	p, w, ok := g.WidestPath(s, tt, width)
	//lint:ignore pcflint/floatcmp the widest-path width is one of the input integer capacities, unmodified
	if !ok || w != 4 || len(p.Arcs) != 2 {
		t.Fatalf("widest: ok=%v w=%g arcs=%d", ok, w, len(p.Arcs))
	}
}

func TestPruneDegreeOne(t *testing.T) {
	// Triangle with a tail: d-e hangs off a.
	g := triangle()
	d := g.AddNode("d")
	e := g.AddNode("e")
	g.AddLink(0, d, 1)
	g.AddLink(d, e, 1)
	pruned, mapping := g.PruneDegreeOne()
	if pruned.NumNodes() != 3 || pruned.NumLinks() != 3 {
		t.Fatalf("pruned to %d nodes %d links", pruned.NumNodes(), pruned.NumLinks())
	}
	if mapping[int(d)] != -1 || mapping[int(e)] != -1 {
		t.Fatal("tail nodes should be removed")
	}
	if mapping[0] == -1 {
		t.Fatal("triangle node should survive")
	}
	if len(pruned.Bridges()) != 0 {
		t.Fatal("pruned graph should have no bridges")
	}
}

func TestPruneEverything(t *testing.T) {
	// A pure path collapses entirely.
	g := New("path")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddLink(a, b, 1)
	g.AddLink(b, c, 1)
	pruned, _ := g.PruneDegreeOne()
	if pruned.NumNodes() != 0 {
		t.Fatalf("expected empty graph, got %d nodes", pruned.NumNodes())
	}
}

func TestSplitSubLinks(t *testing.T) {
	g := triangle()
	split, err := g.SplitSubLinks(2)
	if err != nil {
		t.Fatalf("SplitSubLinks: %v", err)
	}
	if _, err := g.SplitSubLinks(1); err == nil {
		t.Fatal("SplitSubLinks(1) should fail")
	}
	if split.NumLinks() != 6 {
		t.Fatalf("split links = %d, want 6", split.NumLinks())
	}
	if math.Float64bits(split.TotalCapacity()) != math.Float64bits(g.TotalCapacity()) {
		t.Fatalf("capacity changed: %g vs %g", split.TotalCapacity(), g.TotalCapacity())
	}
	// Parallel sub-links fail independently: killing one leaves the
	// graph connected.
	if !split.IsConnected(map[LinkID]bool{0: true}) {
		t.Fatal("split graph should survive one sub-link failure")
	}
}

func TestBridges(t *testing.T) {
	// Two triangles joined by a single link: that link is the bridge.
	g := New("bb")
	n := make([]NodeID, 6)
	for i := range n {
		n[i] = g.AddNode("n")
	}
	g.AddLink(n[0], n[1], 1)
	g.AddLink(n[1], n[2], 1)
	g.AddLink(n[2], n[0], 1)
	bridge := g.AddLink(n[2], n[3], 1)
	g.AddLink(n[3], n[4], 1)
	g.AddLink(n[4], n[5], 1)
	g.AddLink(n[5], n[3], 1)
	bs := g.Bridges()
	if len(bs) != 1 || bs[0] != bridge {
		t.Fatalf("bridges = %v, want [%d]", bs, bridge)
	}
}

func TestBridgesParallelEdges(t *testing.T) {
	// Two nodes joined by two parallel links: neither is a bridge.
	g := New("par")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddLink(a, b, 1)
	g.AddLink(a, b, 1)
	if bs := g.Bridges(); len(bs) != 0 {
		t.Fatalf("parallel links reported as bridges: %v", bs)
	}
	// A single link is a bridge.
	g2 := New("single")
	a2 := g2.AddNode("a")
	b2 := g2.AddNode("b")
	g2.AddLink(a2, b2, 1)
	if bs := g2.Bridges(); len(bs) != 1 {
		t.Fatalf("single link not reported as bridge: %v", bs)
	}
}

func TestIsConnectedWithDeadLinks(t *testing.T) {
	g := triangle()
	if !g.IsConnected(nil) {
		t.Fatal("triangle is connected")
	}
	if !g.IsConnected(map[LinkID]bool{0: true}) {
		t.Fatal("triangle minus one link is connected")
	}
	if g.IsConnected(map[LinkID]bool{0: true, 2: true}) {
		t.Fatal("triangle minus two incident links should isolate a node")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := triangle()
	c := g.Clone()
	c.AddNode("extra")
	c.AddLink(0, 3, 1)
	if g.NumNodes() != 3 || g.NumLinks() != 3 {
		t.Fatal("clone mutated original")
	}
}

func TestAllPairs(t *testing.T) {
	g := triangle()
	pairs := g.AllPairs()
	if len(pairs) != 6 {
		t.Fatalf("pairs = %d, want 6", len(pairs))
	}
	for _, p := range pairs {
		if p.Src == p.Dst {
			t.Fatal("self pair emitted")
		}
	}
}

func TestPathHelpers(t *testing.T) {
	g := triangle()
	p, _ := g.ShortestPath(0, 2, nil, nil)
	if !p.UsesLink(LinkOf(p.Arcs[0])) {
		t.Fatal("UsesLink should find its own link")
	}
	links := p.Links()
	if len(links) != len(p.Arcs) {
		t.Fatal("Links length mismatch")
	}
}

// randomConnectedGraph builds a random connected graph on n nodes by
// adding a spanning tree then extra links.
func randomConnectedGraph(rng *rand.Rand, n, extra int) *Graph {
	g := New("rand")
	for i := 0; i < n; i++ {
		g.AddNode("n")
	}
	for i := 1; i < n; i++ {
		g.AddLink(NodeID(rng.Intn(i)), NodeID(i), 1+rng.Float64())
	}
	for e := 0; e < extra; e++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a != b {
			g.AddLink(NodeID(a), NodeID(b), 1+rng.Float64())
		}
	}
	return g
}

// Property: after pruning, every surviving node has degree >= 2, and
// the pruned graph is connected if the original was.
func TestPropertyPruneInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(2))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 3+rng.Intn(20), rng.Intn(20))
		pruned, _ := g.PruneDegreeOne()
		for i := 0; i < pruned.NumNodes(); i++ {
			if pruned.Degree(NodeID(i)) < 2 {
				return false
			}
		}
		return pruned.IsConnected(nil)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: a bridge's removal disconnects the graph; a non-bridge's
// removal does not.
func TestPropertyBridgesCharacterization(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(8))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 3+rng.Intn(12), rng.Intn(10))
		isBridge := make(map[LinkID]bool)
		for _, b := range g.Bridges() {
			isBridge[b] = true
		}
		for l := 0; l < g.NumLinks(); l++ {
			disconnects := !g.IsConnected(map[LinkID]bool{LinkID(l): true})
			if disconnects != isBridge[LinkID(l)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Dijkstra distances satisfy the triangle inequality through
// any intermediate node.
func TestPropertyShortestPathOptimality(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(17))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		g := randomConnectedGraph(rng, n, n)
		pathLen := func(p Path) float64 {
			total := 0.0
			for _, a := range p.Arcs {
				total += g.Link(LinkOf(a)).Weight
			}
			return total
		}
		for trial := 0; trial < 5; trial++ {
			s := NodeID(rng.Intn(n))
			d := NodeID(rng.Intn(n))
			m := NodeID(rng.Intn(n))
			if s == d {
				continue
			}
			pd, ok := g.ShortestPath(s, d, nil, nil)
			if !ok {
				return false
			}
			if s == m || d == m {
				continue
			}
			p1, ok1 := g.ShortestPath(s, m, nil, nil)
			p2, ok2 := g.ShortestPath(m, d, nil, nil)
			if ok1 && ok2 && pathLen(pd) > pathLen(p1)+pathLen(p2)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestKShortestPathsEnumerates(t *testing.T) {
	// Diamond: a-b-d, a-c-d, plus cross b-c gives 4 simple a->d paths.
	g := New("kd")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.AddLink(a, b, 1)
	g.AddLink(b, d, 1)
	g.AddLink(a, c, 1)
	g.AddLink(c, d, 1)
	g.AddLink(b, c, 1)
	paths := g.KShortestPaths(a, d, 10, nil)
	if len(paths) != 4 {
		t.Fatalf("got %d paths, want 4", len(paths))
	}
	// Nondecreasing length.
	for i := 1; i < len(paths); i++ {
		if len(paths[i-1].Arcs) > len(paths[i].Arcs) {
			t.Fatal("paths not ordered by length")
		}
	}
	// All distinct and simple.
	seen := map[string]bool{}
	for _, p := range paths {
		key := ""
		nodes := p.Nodes(g)
		visited := map[NodeID]bool{}
		for _, n := range nodes {
			if visited[n] {
				t.Fatalf("non-simple path %v", nodes)
			}
			visited[n] = true
			key += string(rune('a' + n))
		}
		if seen[key] {
			t.Fatalf("duplicate path %v", nodes)
		}
		seen[key] = true
	}
}

func TestKShortestPathsUnreachable(t *testing.T) {
	g := New("u")
	a := g.AddNode("a")
	b := g.AddNode("b")
	_ = b
	if paths := g.KShortestPaths(a, b, 3, nil); paths != nil {
		t.Fatalf("expected nil, got %v", paths)
	}
}

func TestKShortestPathsRespectsWeights(t *testing.T) {
	// Two routes: 1-hop expensive, 2-hop cheap.
	g := New("w")
	a := g.AddNode("a")
	m := g.AddNode("m")
	b := g.AddNode("b")
	g.AddWeightedLink(a, b, 1, 10)
	g.AddWeightedLink(a, m, 1, 1)
	g.AddWeightedLink(m, b, 1, 1)
	paths := g.KShortestPaths(a, b, 2, nil)
	if len(paths) != 2 || len(paths[0].Arcs) != 2 {
		t.Fatalf("cheapest path should be the 2-hop one: %v", paths)
	}
}

func TestReadLinksRoundTrip(t *testing.T) {
	input := "# comment\n0 1 10\n1 2 5.5\n2 0 4\n"
	g, err := ReadLinks(strings.NewReader(input), "parsed")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumLinks() != 3 {
		t.Fatalf("parsed %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
	//lint:ignore pcflint/floatcmp parsed literal 5.5 is exactly representable and stored verbatim
	if g.Link(1).Capacity != 5.5 {
		t.Fatalf("capacity = %g", g.Link(1).Capacity)
	}
}

func TestReadLinksErrors(t *testing.T) {
	cases := []string{
		"0 1\n",    // malformed
		"0 1 -3\n", // negative capacity
		"-1 2 1\n", // negative node
		"# only\n", // no links
	}
	for _, c := range cases {
		if _, err := ReadLinks(strings.NewReader(c), "bad"); err == nil {
			t.Fatalf("input %q accepted", c)
		}
	}
}
