package topozoo

import (
	"fmt"
	"math"
	"math/rand"

	"pcf/internal/topology"
)

// SynthKinds lists the synthetic topology families Synth accepts.
var SynthKinds = []string{"waxman", "ring-of-rings"}

// Synth synthesizes a large seeded topology for scaling experiments —
// the 1k–10k node regime where the sparse sweep and factorization
// paths matter and Table 3 graphs are too small. Both families are
// 2-edge-connected by construction (every edge lies on a cycle), so no
// single link failure disconnects them, and fully deterministic per
// (kind, nodes, seed): the same arguments always produce the same
// graph, node for node and link for link.
//
//   - "waxman": nodes on a circle joined by a Hamiltonian ring, plus
//     chords accepted with the Waxman probability
//     α·exp(−d/(β·L)) — locality-biased random graphs, the classic
//     synthetic-WAN model. Average degree ≈ 4.
//   - "ring-of-rings": ⌈√nodes⌉-ish local rings stitched by a backbone
//     ring through one gateway per local ring — a hierarchical
//     metro/backbone shape with strong locality and high diameter.
func Synth(kind string, nodes int, seed int64) (*topology.Graph, error) {
	if nodes < 4 {
		return nil, fmt.Errorf("topozoo: synthetic topology needs >= 4 nodes, got %d", nodes)
	}
	switch kind {
	case "waxman":
		return synthWaxman(nodes, seed), nil
	case "ring-of-rings":
		return synthRingOfRings(nodes, seed), nil
	}
	return nil, fmt.Errorf("topozoo: unknown synthetic kind %q (have %v)", kind, SynthKinds)
}

// synthWaxman: Hamiltonian ring over nodes placed uniformly at random
// on the unit square, plus Waxman chords until average degree 4.
func synthWaxman(n int, seed int64) *topology.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := topology.New(fmt.Sprintf("waxman-%d-%d", n, seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("w%d", i))
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	have := make(map[[2]int]bool, 2*n)
	addLink := func(a, b int, cap float64) bool {
		if a == b {
			return false
		}
		key := [2]int{min(a, b), max(a, b)}
		if have[key] {
			return false
		}
		have[key] = true
		g.AddLink(topology.NodeID(a), topology.NodeID(b), cap)
		return true
	}
	for i := 0; i < n; i++ {
		addLink(i, (i+1)%n, linkSpeeds[rng.Intn(len(linkSpeeds))])
	}
	// Waxman chords: P(u,v) = α·exp(−d/(β·L)), L = √2 on the unit
	// square. α=0.9, β=0.18 bias strongly toward short links, the shape
	// of real WAN meshes.
	const alpha, beta = 0.9, 0.18
	maxDist := math.Sqrt2
	target := 2 * n // average degree 4
	if most := n * (n - 1) / 2; target > most {
		target = most // tiny n: the complete graph caps the chord count
	}
	for g.NumLinks() < target {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b {
			continue
		}
		d := math.Hypot(xs[a]-xs[b], ys[a]-ys[b])
		if rng.Float64() < alpha*math.Exp(-d/(beta*maxDist)) {
			addLink(a, b, linkSpeeds[rng.Intn(len(linkSpeeds))])
		}
	}
	return g
}

// synthRingOfRings: local rings of ~√n nodes, one gateway each, all
// gateways joined by a high-capacity backbone ring.
func synthRingOfRings(n int, seed int64) *topology.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := topology.New(fmt.Sprintf("ring-of-rings-%d-%d", n, seed))
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("r%d", i))
	}
	groups := int(math.Round(math.Sqrt(float64(n))))
	if groups < 2 {
		groups = 2
	}
	// Contiguous node ranges per group (sizes differ by at most one).
	starts := make([]int, groups+1)
	for k := 0; k <= groups; k++ {
		starts[k] = k * n / groups
	}
	gateways := make([]int, groups)
	for k := 0; k < groups; k++ {
		gateways[k] = starts[k]
	}
	for k := 0; k < groups; k++ {
		lo, hi := starts[k], starts[k+1]
		size := hi - lo
		if size == 1 {
			continue
		}
		if size == 2 {
			// A ring of two would be a doubled link; one local link plus a
			// tie to the next gateway closes a cycle through the backbone.
			g.AddLink(topology.NodeID(lo), topology.NodeID(lo+1), linkSpeeds[rng.Intn(len(linkSpeeds))])
			g.AddLink(topology.NodeID(lo+1), topology.NodeID(gateways[(k+1)%groups]), linkSpeeds[rng.Intn(len(linkSpeeds))])
			continue
		}
		for i := lo; i < hi; i++ {
			j := i + 1
			if j == hi {
				j = lo
			}
			g.AddLink(topology.NodeID(i), topology.NodeID(j), linkSpeeds[rng.Intn(len(linkSpeeds))])
		}
	}
	// Backbone ring through the gateways, fat links.
	const backboneCap = 100
	for k := 0; k < groups; k++ {
		g.AddLink(topology.NodeID(gateways[k]), topology.NodeID(gateways[(k+1)%groups]), backboneCap)
	}
	return g
}
