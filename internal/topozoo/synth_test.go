package topozoo

import (
	"testing"

	"pcf/internal/topology"
)

// sameGraph compares two graphs structurally: names, nodes, and the
// exact link sequence (endpoints, capacity, weight).
func sameGraph(a, b *topology.Graph) bool {
	if a.Name != b.Name || a.NumNodes() != b.NumNodes() || a.NumLinks() != b.NumLinks() {
		return false
	}
	for n := 0; n < a.NumNodes(); n++ {
		if a.NodeName(topology.NodeID(n)) != b.NodeName(topology.NodeID(n)) {
			return false
		}
	}
	for l := 0; l < a.NumLinks(); l++ {
		la, lb := a.Link(topology.LinkID(l)), b.Link(topology.LinkID(l))
		if la != lb {
			return false
		}
	}
	return true
}

func TestSynthDeterministic(t *testing.T) {
	for _, kind := range SynthKinds {
		for _, n := range []int{4, 50, 300} {
			g1, err := Synth(kind, n, 7)
			if err != nil {
				t.Fatalf("%s/%d: %v", kind, n, err)
			}
			g2, err := Synth(kind, n, 7)
			if err != nil {
				t.Fatal(err)
			}
			if !sameGraph(g1, g2) {
				t.Errorf("%s/%d: same seed produced different graphs", kind, n)
			}
			g3, err := Synth(kind, n, 8)
			if err != nil {
				t.Fatal(err)
			}
			if n >= 50 && sameGraph(g1, g3) {
				t.Errorf("%s/%d: different seeds produced identical graphs", kind, n)
			}
		}
	}
}

func TestSynthTwoEdgeConnected(t *testing.T) {
	for _, kind := range SynthKinds {
		for _, n := range []int{4, 5, 17, 100, 1000} {
			g, err := Synth(kind, n, 3)
			if err != nil {
				t.Fatalf("%s/%d: %v", kind, n, err)
			}
			if g.NumNodes() != n {
				t.Fatalf("%s/%d: got %d nodes", kind, n, g.NumNodes())
			}
			if !g.IsConnected(nil) {
				t.Errorf("%s/%d: not connected", kind, n)
			}
			if br := g.Bridges(); len(br) > 0 {
				t.Errorf("%s/%d: has %d bridges (not 2-edge-connected)", kind, n, len(br))
			}
		}
	}
}

func TestSynthWaxmanShape(t *testing.T) {
	g, err := Synth("waxman", 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Average degree 4: the chord loop runs until 2n links.
	if g.NumLinks() != 2000 {
		t.Errorf("waxman-1000: got %d links, want 2000", g.NumLinks())
	}
}

func TestSynthErrors(t *testing.T) {
	if _, err := Synth("waxman", 3, 1); err == nil {
		t.Error("nodes < 4 should error")
	}
	if _, err := Synth("torus", 100, 1); err == nil {
		t.Error("unknown kind should error")
	}
}
