// Package topozoo provides the evaluation topologies. The paper
// evaluates over 21 Internet Topology Zoo graphs (its Table 3); the
// original GraphML files are not redistributable here, so Load
// synthesizes, deterministically per topology name, an ISP-like
// 2-edge-connected graph with exactly the node and edge counts of
// Table 3 (ring-plus-chords with preferential attachment and mixed
// link speeds). DESIGN.md documents this substitution. The paper's
// worked examples (Figs. 1, 3, 4 and 5) are reproduced exactly.
package topozoo

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"pcf/internal/topology"
)

// Entry describes one evaluation topology (paper Table 3).
type Entry struct {
	Name  string
	Nodes int
	Edges int
}

// Table3 lists the 21 topologies of the paper's evaluation with their
// published node and edge counts.
var Table3 = []Entry{
	{"B4", 12, 19},
	{"IBM", 17, 23},
	{"ATT", 25, 56},
	{"Quest", 19, 30},
	{"Tinet", 48, 84},
	{"Sprint", 10, 17},
	{"GEANT", 32, 50},
	{"Xeex", 22, 32},
	{"CWIX", 21, 26},
	{"Digex", 31, 35},
	{"IIJ", 27, 55},
	{"JanetBackbone", 29, 45},
	{"Highwinds", 16, 29},
	{"BTNorthAmerica", 36, 76},
	{"CRLNetwork", 32, 37},
	{"Darkstrand", 28, 31},
	{"Integra", 23, 32},
	{"Xspedius", 33, 47},
	{"InternetMCI", 18, 32},
	{"Deltacom", 103, 151},
	{"ION", 114, 135},
}

// Names returns the topology names in Table 3 order.
func Names() []string {
	out := make([]string, len(Table3))
	for i, e := range Table3 {
		out[i] = e.Name
	}
	return out
}

// Load synthesizes the named topology. The result is deterministic:
// the same name always produces the same graph.
func Load(name string) (*topology.Graph, error) {
	for _, e := range Table3 {
		if e.Name == name {
			return synthesize(e), nil
		}
	}
	return nil, fmt.Errorf("topozoo: unknown topology %q", name)
}

// MustLoad is Load that panics on unknown names; for code that hard-
// wires a Table 3 name. The Must* naming places it on the
// pcflint/nopanic allowlist (DESIGN.md §10); anything handling
// user-supplied names uses Load.
func MustLoad(name string) *topology.Graph {
	g, err := Load(name)
	if err != nil {
		panic(err)
	}
	return g
}

// seedFor derives a stable seed from the topology name.
func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}

// linkSpeeds is the capacity mix assigned to synthesized links,
// mimicking a WAN with OC-48 / OC-192 / 40G-class trunks.
var linkSpeeds = []float64{4, 10, 10, 10, 40}

// synthesize builds an ISP-like graph: a Hamiltonian ring over nodes
// placed on a circle (guaranteeing 2-edge-connectivity, so no single
// link failure disconnects it — the property the paper enforces by
// pruning), plus chords chosen by a mix of preferential attachment and
// locality.
func synthesize(e Entry) *topology.Graph {
	rng := rand.New(rand.NewSource(seedFor(e.Name)))
	g := topology.New(e.Name)
	for i := 0; i < e.Nodes; i++ {
		g.AddNode(fmt.Sprintf("%s%d", e.Name, i))
	}
	deg := make([]int, e.Nodes)
	have := make(map[[2]int]bool)
	addLink := func(a, b int) bool {
		if a == b {
			return false
		}
		key := [2]int{min(a, b), max(a, b)}
		if have[key] {
			return false
		}
		have[key] = true
		g.AddLink(topology.NodeID(a), topology.NodeID(b), linkSpeeds[rng.Intn(len(linkSpeeds))])
		deg[a]++
		deg[b]++
		return true
	}
	// Ring.
	for i := 0; i < e.Nodes; i++ {
		addLink(i, (i+1)%e.Nodes)
	}
	// Chords.
	for g.NumLinks() < e.Edges {
		var a, b int
		if rng.Float64() < 0.5 {
			// Preferential attachment: pick endpoints weighted by degree.
			a = pickByDegree(rng, deg)
			b = pickByDegree(rng, deg)
		} else {
			// Locality: a random node and a nearby node on the ring.
			a = rng.Intn(e.Nodes)
			span := 2 + rng.Intn(max(2, e.Nodes/4))
			if rng.Intn(2) == 0 {
				span = -span
			}
			b = ((a+span)%e.Nodes + e.Nodes) % e.Nodes
		}
		addLink(a, b)
	}
	return g
}

func pickByDegree(rng *rand.Rand, deg []int) int {
	total := 0
	for _, d := range deg {
		total += d
	}
	r := rng.Intn(total)
	for i, d := range deg {
		r -= d
		if r < 0 {
			return i
		}
	}
	return len(deg) - 1
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Gadget is a worked-example topology with its designated source and
// destination and the canonical tunnels the paper uses with it.
type Gadget struct {
	Graph *topology.Graph
	S, T  topology.NodeID
	// Tunnels are the canonical tunnel paths from S to T in the order
	// the paper names them (l1, l2, ...).
	Tunnels []topology.Path
	// Aux holds named nodes for building logical sequences.
	Aux map[string]topology.NodeID
}

// ErrNoLink reports a gadget path hop between unconnected nodes.
var ErrNoLink = errors.New("topozoo: no link between path nodes")

// path builds a Path through the listed nodes, resolving each hop to a
// connecting link (the gadgets have at most one link per node pair,
// except where disambiguated by explicit link IDs). A hop between
// unconnected nodes is reported as ErrNoLink.
func path(g *topology.Graph, nodes ...topology.NodeID) (topology.Path, error) {
	var arcs []topology.ArcID
	for i := 0; i+1 < len(nodes); i++ {
		found := false
		for _, a := range g.OutArcs(nodes[i]) {
			if _, to := g.ArcEnds(a); to == nodes[i+1] {
				arcs = append(arcs, a)
				found = true
				break
			}
		}
		if !found {
			return topology.Path{}, fmt.Errorf("%w: %d-%d", ErrNoLink, nodes[i], nodes[i+1])
		}
	}
	return topology.Path{Arcs: arcs}, nil
}

// mustPath is path for the compile-time gadget fixtures below, where a
// missing link is a programmer error in the fixture itself (documented
// pcflint/nopanic allowlist entry).
func mustPath(g *topology.Graph, nodes ...topology.NodeID) topology.Path {
	p, err := path(g, nodes...)
	if err != nil {
		panic(err)
	}
	return p
}

// Fig1 reproduces the paper's Fig. 1: the optimal response carries 2
// units from s to t under any single link failure, while FFC with all
// four tunnels guarantees only 1 and with three disjoint tunnels 1.5.
func Fig1() *Gadget {
	g := topology.New("fig1")
	s := g.AddNode("s")
	n1 := g.AddNode("1")
	n2 := g.AddNode("2")
	n3 := g.AddNode("3")
	n4 := g.AddNode("4")
	t := g.AddNode("t")
	g.AddLink(s, n1, 1)
	g.AddLink(n1, t, 1)
	g.AddLink(s, n2, 1)
	g.AddLink(n2, t, 1)
	g.AddLink(s, n3, 0.5)
	g.AddLink(n3, t, 1)
	g.AddLink(s, n4, 0.5)
	g.AddLink(n4, n3, 0.5)
	return &Gadget{
		Graph: g, S: s, T: t,
		Tunnels: []topology.Path{
			mustPath(g, s, n1, t),     // l1
			mustPath(g, s, n2, t),     // l2
			mustPath(g, s, n3, t),     // l3
			mustPath(g, s, n4, n3, t), // l4 (shares 3-t with l3)
		},
		Aux: map[string]topology.NodeID{"1": n1, "2": n2, "3": n3, "4": n4},
	}
}

// Fig3 reproduces Fig. 3: three parallel 1/3-capacity links s-u and two
// unit links u-t; the optimal response guarantees 2/3 under any single
// failure while tunnel reservations cap FFC at 1/2. It is Fig4(3, 2, 2)
// in the paper's generalization.
func Fig3() *Gadget {
	gad := Fig4(3, 2, 2)
	gad.Graph.Name = "fig3"
	return gad
}

// Fig4 builds the family of Fig. 4: m+1 nodes s0..sm; p parallel links
// of capacity 1/p between s0 and s1; and n parallel unit-capacity links
// between consecutive later nodes. Under any n-1 simultaneous link
// failures the optimal carries 1-(n-1)/p while tunnel-based schemes
// guarantee at most 1/n (paper Proposition 3).
func Fig4(p, n, m int) *Gadget {
	if p < 1 || n < 1 || m < 2 {
		//lint:ignore pcflint/nopanic documented precondition of a compile-time gadget family; parameters come from code, never from data
		panic("topozoo: Fig4 requires p,n >= 1 and m >= 2")
	}
	g := topology.New(fmt.Sprintf("fig4(p=%d,n=%d,m=%d)", p, n, m))
	nodes := make([]topology.NodeID, m+1)
	for i := range nodes {
		nodes[i] = g.AddNode(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < p; i++ {
		g.AddLink(nodes[0], nodes[1], 1/float64(p))
	}
	for seg := 1; seg < m; seg++ {
		for i := 0; i < n; i++ {
			g.AddLink(nodes[seg], nodes[seg+1], 1)
		}
	}
	aux := map[string]topology.NodeID{}
	for i, nd := range nodes {
		aux[fmt.Sprintf("s%d", i)] = nd
	}
	return &Gadget{Graph: g, S: nodes[0], T: nodes[m], Aux: aux}
}

// Fig5 reproduces Fig. 5 (Table 1): under two simultaneous link
// failures, Optimal=1, FFC=0, PCF-TF=2/3, PCF-LS=4/5, PCF-CLS=1, R3=0.
// Half-capacity links: s-1, s-2, s-3, s-4, 4-1, 4-2, 4-3. Unit links:
// 1-5, 2-6, 3-7, 5-t, 6-t, 7-t. (This is the unique half/full capacity
// assignment under which all six Table 1 values hold.)
func Fig5() *Gadget {
	g := topology.New("fig5")
	s := g.AddNode("s")
	n := make([]topology.NodeID, 8)
	for i := 1; i <= 7; i++ {
		n[i] = g.AddNode(fmt.Sprintf("%d", i))
	}
	t := g.AddNode("t")
	half := 0.5
	g.AddLink(s, n[1], half)
	g.AddLink(s, n[2], half)
	g.AddLink(s, n[3], half)
	g.AddLink(s, n[4], half)
	g.AddLink(n[4], n[1], half)
	g.AddLink(n[4], n[2], half)
	g.AddLink(n[4], n[3], half)
	g.AddLink(n[1], n[5], 1)
	g.AddLink(n[2], n[6], 1)
	g.AddLink(n[3], n[7], 1)
	g.AddLink(n[5], t, 1)
	g.AddLink(n[6], t, 1)
	g.AddLink(n[7], t, 1)
	aux := map[string]topology.NodeID{}
	for i := 1; i <= 7; i++ {
		aux[fmt.Sprintf("%d", i)] = n[i]
	}
	return &Gadget{
		Graph: g, S: s, T: t,
		Tunnels: []topology.Path{
			mustPath(g, s, n[1], n[5], t),
			mustPath(g, s, n[2], n[6], t),
			mustPath(g, s, n[3], n[7], t),
			mustPath(g, s, n[4], n[1], n[5], t),
			mustPath(g, s, n[4], n[2], n[6], t),
			mustPath(g, s, n[4], n[3], n[7], t),
		},
		Aux: aux,
	}
}

// SortedEntries returns Table3 sorted by edge count, used by the
// solve-time experiment (Fig. 14).
func SortedEntries() []Entry {
	out := append([]Entry(nil), Table3...)
	sort.Slice(out, func(i, j int) bool { return out[i].Edges < out[j].Edges })
	return out
}
