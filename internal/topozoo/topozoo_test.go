package topozoo

import (
	"math"
	"testing"

	"pcf/internal/failures"
	"pcf/internal/topology"
)

func TestTable3SizesMatchPaper(t *testing.T) {
	if len(Table3) != 21 {
		t.Fatalf("expected 21 topologies, have %d", len(Table3))
	}
	for _, e := range Table3 {
		g, err := Load(e.Name)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumNodes() != e.Nodes || g.NumLinks() != e.Edges {
			t.Fatalf("%s: got %d nodes %d links, want %d/%d",
				e.Name, g.NumNodes(), g.NumLinks(), e.Nodes, e.Edges)
		}
	}
}

func TestLoadDeterministic(t *testing.T) {
	a := MustLoad("Sprint")
	b := MustLoad("Sprint")
	if a.NumLinks() != b.NumLinks() {
		t.Fatal("nondeterministic synthesis")
	}
	for i := 0; i < a.NumLinks(); i++ {
		la, lb := a.Link(topology.LinkID(i)), b.Link(topology.LinkID(i))
		if la.A != lb.A || la.B != lb.B || math.Float64bits(la.Capacity) != math.Float64bits(lb.Capacity) {
			t.Fatalf("link %d differs between loads", i)
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("NotATopology"); err == nil {
		t.Fatal("expected error")
	}
}

func TestAllTopologiesSurviveSingleFailure(t *testing.T) {
	// The paper prunes so that no single link failure disconnects the
	// network; our synthesized graphs must have that property natively.
	for _, e := range Table3 {
		g := MustLoad(e.Name)
		if bs := g.Bridges(); len(bs) != 0 {
			t.Fatalf("%s has bridges %v", e.Name, bs)
		}
		if !g.IsConnected(nil) {
			t.Fatalf("%s is disconnected", e.Name)
		}
		pruned, _ := g.PruneDegreeOne()
		if pruned.NumNodes() != g.NumNodes() {
			t.Fatalf("%s: pruning removed nodes (min degree < 2)", e.Name)
		}
	}
}

func TestFig1Gadget(t *testing.T) {
	gad := Fig1()
	if gad.Graph.NumNodes() != 6 || gad.Graph.NumLinks() != 8 {
		t.Fatalf("fig1 size %d/%d", gad.Graph.NumNodes(), gad.Graph.NumLinks())
	}
	if len(gad.Tunnels) != 4 {
		t.Fatalf("fig1 should have 4 canonical tunnels")
	}
	// l3 and l4 share link 3-t; l1, l2, l3 are mutually disjoint.
	shares := func(a, b topology.Path) bool {
		for _, l := range a.Links() {
			if b.UsesLink(l) {
				return true
			}
		}
		return false
	}
	if !shares(gad.Tunnels[2], gad.Tunnels[3]) {
		t.Fatal("l3 and l4 must share a link")
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if shares(gad.Tunnels[i], gad.Tunnels[j]) {
				t.Fatalf("l%d and l%d should be disjoint", i+1, j+1)
			}
		}
	}
}

func TestFig3IsFig4Special(t *testing.T) {
	gad := Fig3()
	// p=3 parallel 1/3 links s0-s1 plus n=2 unit links s1-s2.
	if gad.Graph.NumNodes() != 3 || gad.Graph.NumLinks() != 5 {
		t.Fatalf("fig3 size %d/%d", gad.Graph.NumNodes(), gad.Graph.NumLinks())
	}
}

func TestFig4Construction(t *testing.T) {
	gad := Fig4(4, 3, 3)
	// nodes s0..s3; links: 4 + 3 + 3 = 10.
	if gad.Graph.NumNodes() != 4 || gad.Graph.NumLinks() != 10 {
		t.Fatalf("fig4 size %d/%d", gad.Graph.NumNodes(), gad.Graph.NumLinks())
	}
	// Capacity of the first segment sums to 1.
	total := 0.0
	for _, l := range gad.Graph.Links() {
		if (l.A == gad.S && l.B == gad.Aux["s1"]) || (l.B == gad.S && l.A == gad.Aux["s1"]) {
			total += l.Capacity
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("first segment capacity %g, want 1", total)
	}
}

func TestFig5Gadget(t *testing.T) {
	gad := Fig5()
	if gad.Graph.NumNodes() != 9 || gad.Graph.NumLinks() != 13 {
		t.Fatalf("fig5 size %d/%d", gad.Graph.NumNodes(), gad.Graph.NumLinks())
	}
	if len(gad.Tunnels) != 6 {
		t.Fatal("fig5 should have 6 canonical tunnels")
	}
	// The gadget survives any two link failures for connectivity
	// purposes except cuts that isolate s or t entirely... in fact the
	// paper's optimal is 1 > 0, so no 2-failure disconnects s from t.
	fs := failures.SingleLinks(gad.Graph, 2)
	fs.Enumerate(func(sc failures.Scenario) bool {
		// s must still reach t.
		dead := sc.Dead
		reached := reachable(gad.Graph, gad.S, dead)
		if !reached[gad.T] {
			t.Fatalf("scenario %v disconnects s from t", sc)
		}
		return true
	})
}

func reachable(g *topology.Graph, from topology.NodeID, dead map[topology.LinkID]bool) map[topology.NodeID]bool {
	seen := map[topology.NodeID]bool{from: true}
	stack := []topology.NodeID{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.OutArcs(n) {
			if dead[topology.LinkOf(a)] {
				continue
			}
			if _, to := g.ArcEnds(a); !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return seen
}

func TestSortedEntries(t *testing.T) {
	entries := SortedEntries()
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Edges > entries[i].Edges {
			t.Fatal("not sorted by edges")
		}
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 21 || names[0] != "B4" {
		t.Fatalf("names = %v", names)
	}
}

// TestFig4FamilyProposition3Numbers sweeps the Fig. 4 parameter grid
// and checks the closed-form capacities behind Proposition 3: the
// first segment totals 1, later segments total n each.
func TestFig4FamilyProposition3Numbers(t *testing.T) {
	for _, p := range []int{2, 3, 5} {
		for _, n := range []int{1, 2, 3} {
			for _, m := range []int{2, 3, 4} {
				gad := Fig4(p, n, m)
				if gad.Graph.NumLinks() != p+n*(m-1) {
					t.Fatalf("p=%d n=%d m=%d: links=%d", p, n, m, gad.Graph.NumLinks())
				}
				segTotal := make([]float64, m)
				for _, l := range gad.Graph.Links() {
					a, b := int(l.A), int(l.B)
					lo := a
					if b < a {
						lo = b
					}
					segTotal[lo] += l.Capacity
				}
				if segTotal[0] < 0.999 || segTotal[0] > 1.001 {
					t.Fatalf("first segment capacity %g", segTotal[0])
				}
				for s := 1; s < m; s++ {
					//lint:ignore pcflint/floatcmp sum of n unit capacities is exact for these small n
					if segTotal[s] != float64(n) {
						t.Fatalf("segment %d capacity %g, want %d", s, segTotal[s], n)
					}
				}
			}
		}
	}
}

func TestFig4Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m < 2")
		}
	}()
	Fig4(3, 2, 1)
}
