package traffic

import (
	"math"
	"strings"
	"testing"
)

// FuzzReadMatrix drives the traffic-matrix parser with arbitrary input
// and dimensions. The parser must never panic, and any matrix it
// accepts must pass Validate and carry only finite nonnegative
// demands — the preconditions of ScaleToMLU and the LP builders.
func FuzzReadMatrix(f *testing.F) {
	seeds := []struct {
		in string
		n  int
	}{
		// The cmd/topogen format: "src dst demand" per line.
		{"0 1 2.5\n1 0 1\n", 4},
		{"# comment\n\n2 3 0.125\n", 4},
		{"0 1 0\n", 2},   // zero demand is legal
		{"", 3},          // empty matrix is legal
		{"0 0 1\n", 2},   // self demand: rejected
		{"0 1 -2\n", 2},  // negative demand: rejected
		{"0 1 NaN\n", 2}, // non-finite demand: rejected
		{"0 1 Inf\n", 2}, //
		{"0 5 1\n", 2},   // node out of range: rejected
		{"x y z\n", 2},   // non-numeric: rejected
		{"0 1 1 extra\n", 2},
	}
	for _, s := range seeds {
		f.Add(s.in, s.n)
	}
	f.Fuzz(func(t *testing.T, in string, n int) {
		// Keep the dense n x n allocation sane.
		if n < 0 || n > 64 || len(in) > 1<<12 {
			return
		}
		m, err := ReadMatrix(strings.NewReader(in), n)
		if err != nil {
			return
		}
		if m.N() != n {
			t.Fatalf("matrix dimension %d, want %d", m.N(), n)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted matrix fails Validate: %v", err)
		}
		for i, row := range m.Demand {
			for j, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("demand (%d,%d) = %g not finite nonnegative", i, j, v)
				}
			}
		}
		if total := m.Total(); math.IsNaN(total) || math.IsInf(total, 0) || total < 0 {
			t.Fatalf("total demand %g not finite nonnegative", total)
		}
	})
}
