// Package traffic generates and manipulates traffic matrices. The
// paper's evaluation uses gravity-model matrices [Zhang et al.] scaled
// so that the optimal no-failure maximum link utilization (MLU) lands
// in [0.6, 0.63]; Gravity plus mcf.ScaleToMLU reproduce that recipe.
package traffic

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"

	"pcf/internal/topology"
)

// Matrix is a dense traffic matrix: Demand[s][t] is the offered load
// from node s to node t.
type Matrix struct {
	Demand [][]float64
}

// NewMatrix returns an all-zero n x n matrix.
func NewMatrix(n int) *Matrix {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	return &Matrix{Demand: d}
}

// N returns the matrix dimension.
func (m *Matrix) N() int { return len(m.Demand) }

// At returns the demand for a pair.
func (m *Matrix) At(p topology.Pair) float64 { return m.Demand[p.Src][p.Dst] }

// Set sets the demand for a pair.
func (m *Matrix) Set(p topology.Pair, v float64) { m.Demand[p.Src][p.Dst] = v }

// Total returns the sum of all demands.
func (m *Matrix) Total() float64 {
	total := 0.0
	for _, row := range m.Demand {
		for _, v := range row {
			total += v
		}
	}
	return total
}

// Scale returns a copy with every demand multiplied by k.
func (m *Matrix) Scale(k float64) *Matrix {
	out := NewMatrix(m.N())
	for i, row := range m.Demand {
		for j, v := range row {
			out.Demand[i][j] = v * k
		}
	}
	return out
}

// Pairs returns the pairs with demand above threshold, sorted by
// descending demand (deterministic tiebreak on pair order).
func (m *Matrix) Pairs(threshold float64) []topology.Pair {
	var out []topology.Pair
	for s := range m.Demand {
		for t, v := range m.Demand[s] {
			if s != t && v > threshold {
				out = append(out, topology.Pair{Src: topology.NodeID(s), Dst: topology.NodeID(t)})
			}
		}
	}
	sortPairsByDemand(out, m)
	return out
}

// TopPairs returns the k highest-demand pairs (all pairs if k <= 0 or
// k exceeds the number of positive-demand pairs).
func (m *Matrix) TopPairs(k int) []topology.Pair {
	pairs := m.Pairs(0)
	if k > 0 && k < len(pairs) {
		pairs = pairs[:k]
	}
	return pairs
}

func sortPairsByDemand(pairs []topology.Pair, m *Matrix) {
	// Insertion-stable sort by descending demand then pair order.
	lessKey := func(p topology.Pair) (float64, int32, int32) {
		return -m.At(p), int32(p.Src), int32(p.Dst)
	}
	sortSlice(pairs, func(a, b topology.Pair) bool {
		da, sa, ta := lessKey(a)
		db, sb, tb := lessKey(b)
		if da < db {
			return true
		}
		if db < da {
			return false
		}
		if sa != sb {
			return sa < sb
		}
		return ta < tb
	})
}

func sortSlice(p []topology.Pair, less func(a, b topology.Pair) bool) {
	// The comparator is a total order (demand, then src, then dst), so
	// an unstable sort is still deterministic. Synthetic topologies put
	// ~n² positive pairs here; insertion sort does not survive that.
	sort.Slice(p, func(i, j int) bool { return less(p[i], p[j]) })
}

// Restrict zeroes all demands not in keep and returns the copy.
func (m *Matrix) Restrict(keep []topology.Pair) *Matrix {
	out := NewMatrix(m.N())
	for _, p := range keep {
		out.Set(p, m.At(p))
	}
	return out
}

// GravityOptions tune gravity-matrix generation.
type GravityOptions struct {
	// Seed drives the mass jitter; distinct seeds give the distinct
	// matrices the paper's per-topology 12-demand experiments use.
	Seed int64
	// Jitter is the multiplicative lognormal-ish noise on node masses
	// (0 = pure capacity-proportional gravity). Typical: 0.4.
	Jitter float64
	// Total is the target sum of demands. If 0 a default proportional
	// to total capacity is used.
	Total float64
}

// Gravity generates a gravity-model traffic matrix: node masses are
// proportional to total incident capacity (with optional jitter), and
// the demand between s and t is proportional to mass_s * mass_t.
func Gravity(g *topology.Graph, opts GravityOptions) *Matrix {
	n := g.NumNodes()
	if n == 0 {
		return NewMatrix(0)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	mass := make([]float64, n)
	for _, l := range g.Links() {
		mass[l.A] += l.Capacity
		mass[l.B] += l.Capacity
	}
	for i := range mass {
		if opts.Jitter > 0 {
			mass[i] *= math.Exp(opts.Jitter * rng.NormFloat64())
		}
		if mass[i] <= 0 {
			mass[i] = 1e-9
		}
	}
	sum := 0.0
	for _, v := range mass {
		sum += v
	}
	total := opts.Total
	if total == 0 {
		total = g.TotalCapacity() / 4
	}
	m := NewMatrix(n)
	norm := 0.0
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s != t {
				norm += mass[s] * mass[t]
			}
		}
	}
	if norm == 0 {
		return m
	}
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s != t {
				m.Demand[s][t] = total * mass[s] * mass[t] / norm
			}
		}
	}
	return m
}

// Uniform returns a matrix with demand v between every ordered pair.
func Uniform(g *topology.Graph, v float64) *Matrix {
	n := g.NumNodes()
	m := NewMatrix(n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s != t {
				m.Demand[s][t] = v
			}
		}
	}
	return m
}

// Single returns a matrix with one nonzero demand.
func Single(n int, p topology.Pair, v float64) *Matrix {
	m := NewMatrix(n)
	m.Set(p, v)
	return m
}

// Validate checks basic sanity: nonnegative entries, zero diagonal.
func (m *Matrix) Validate() error {
	for i, row := range m.Demand {
		if len(row) != m.N() {
			return fmt.Errorf("traffic: row %d has length %d, want %d", i, len(row), m.N())
		}
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("traffic: negative demand at (%d,%d)", i, j)
			}
			if i == j && v != 0 {
				return fmt.Errorf("traffic: nonzero self demand at node %d", i)
			}
		}
	}
	return nil
}

// ReadMatrix parses a traffic matrix from the text format cmd/topogen
// emits: one "src dst demand" line per pair; '#' lines are comments.
func ReadMatrix(r io.Reader, n int) (*Matrix, error) {
	m := NewMatrix(n)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var s, t int
		var d float64
		if _, err := fmt.Sscanf(line, "%d %d %g", &s, &t, &d); err != nil {
			return nil, fmt.Errorf("traffic: line %d: %w", lineNo, err)
		}
		if s < 0 || s >= n || t < 0 || t >= n {
			return nil, fmt.Errorf("traffic: line %d: node out of range", lineNo)
		}
		// Validate catches negatives but not NaN (every comparison with
		// NaN is false) or +Inf, both of which Sscanf %g accepts.
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("traffic: line %d: demand must be finite", lineNo)
		}
		m.Demand[s][t] = d
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
