package traffic

import (
	"math"
	"strings"
	"testing"

	"pcf/internal/topology"
)

func ring(n int) *topology.Graph {
	g := topology.New("ring")
	for i := 0; i < n; i++ {
		g.AddNode("n")
	}
	for i := 0; i < n; i++ {
		g.AddLink(topology.NodeID(i), topology.NodeID((i+1)%n), 10)
	}
	return g
}

func TestGravityBasics(t *testing.T) {
	g := ring(5)
	tm := Gravity(g, GravityOptions{Seed: 1, Total: 100})
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm.Total()-100) > 1e-9 {
		t.Fatalf("total = %g, want 100", tm.Total())
	}
	// Symmetric masses on a symmetric ring with no jitter: all demands equal.
	tm0 := Gravity(g, GravityOptions{Seed: 1, Total: 100, Jitter: 0})
	first := tm0.Demand[0][1]
	for s := 0; s < 5; s++ {
		for d := 0; d < 5; d++ {
			if s != d && math.Abs(tm0.Demand[s][d]-first) > 1e-9 {
				t.Fatalf("unjittered ring demands not uniform: %g vs %g", tm0.Demand[s][d], first)
			}
		}
	}
}

func TestGravitySeedsDiffer(t *testing.T) {
	g := ring(6)
	a := Gravity(g, GravityOptions{Seed: 1, Jitter: 0.4, Total: 10})
	b := Gravity(g, GravityOptions{Seed: 2, Jitter: 0.4, Total: 10})
	same := true
	for s := 0; s < 6 && same; s++ {
		for d := 0; d < 6; d++ {
			if math.Abs(a.Demand[s][d]-b.Demand[s][d]) > 1e-12 {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical matrices")
	}
	// Same seed reproduces exactly.
	c := Gravity(g, GravityOptions{Seed: 1, Jitter: 0.4, Total: 10})
	for s := 0; s < 6; s++ {
		for d := 0; d < 6; d++ {
			if math.Float64bits(a.Demand[s][d]) != math.Float64bits(c.Demand[s][d]) {
				t.Fatal("same seed not reproducible")
			}
		}
	}
}

func TestScale(t *testing.T) {
	g := ring(4)
	tm := Gravity(g, GravityOptions{Seed: 3, Total: 8})
	tm2 := tm.Scale(2.5)
	if math.Abs(tm2.Total()-20) > 1e-9 {
		t.Fatalf("scaled total = %g", tm2.Total())
	}
	//lint:ignore pcflint/floatcmp total of the small integer demands is exact; Scale must not have touched them
	if tm.Total() != 8 {
		t.Fatal("Scale mutated the receiver")
	}
}

func TestPairsSortedByDemand(t *testing.T) {
	m := NewMatrix(3)
	m.Demand[0][1] = 5
	m.Demand[1][2] = 9
	m.Demand[2][0] = 1
	pairs := m.Pairs(0)
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	if pairs[0] != (topology.Pair{Src: 1, Dst: 2}) {
		t.Fatalf("first pair %v", pairs[0])
	}
	if pairs[2] != (topology.Pair{Src: 2, Dst: 0}) {
		t.Fatalf("last pair %v", pairs[2])
	}
	top := m.TopPairs(2)
	if len(top) != 2 || top[0] != (topology.Pair{Src: 1, Dst: 2}) {
		t.Fatalf("top pairs %v", top)
	}
}

func TestRestrict(t *testing.T) {
	m := NewMatrix(3)
	m.Demand[0][1] = 5
	m.Demand[1][2] = 9
	r := m.Restrict([]topology.Pair{{Src: 0, Dst: 1}})
	//lint:ignore pcflint/floatcmp Restrict copies stored literals verbatim
	if r.Demand[0][1] != 5 || r.Demand[1][2] != 0 {
		t.Fatalf("restrict wrong: %v", r.Demand)
	}
}

func TestUniformAndSingle(t *testing.T) {
	g := ring(3)
	u := Uniform(g, 2)
	//lint:ignore pcflint/floatcmp sum of 6 integer demands of 2 is exact
	if u.Total() != 12 {
		t.Fatalf("uniform total = %g", u.Total())
	}
	s := Single(3, topology.Pair{Src: 0, Dst: 2}, 7)
	//lint:ignore pcflint/floatcmp a single stored literal, read back unmodified
	if s.Total() != 7 || s.At(topology.Pair{Src: 0, Dst: 2}) != 7 {
		t.Fatal("single wrong")
	}
}

func TestValidateCatchesBadMatrices(t *testing.T) {
	m := NewMatrix(2)
	m.Demand[0][1] = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative demand not caught")
	}
	m2 := NewMatrix(2)
	m2.Demand[1][1] = 3
	if err := m2.Validate(); err == nil {
		t.Fatal("self demand not caught")
	}
}

func TestReadMatrix(t *testing.T) {
	input := "# tm\n0 1 5\n1 2 3.5\n"
	m, err := ReadMatrix(strings.NewReader(input), 3)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore pcflint/floatcmp parsed literals 5 and 3.5 are exactly representable
	if m.Demand[0][1] != 5 || m.Demand[1][2] != 3.5 {
		t.Fatalf("parsed wrong: %v", m.Demand)
	}
	if _, err := ReadMatrix(strings.NewReader("0 9 1\n"), 3); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := ReadMatrix(strings.NewReader("1 1 4\n"), 3); err == nil {
		t.Fatal("self demand accepted")
	}
}
