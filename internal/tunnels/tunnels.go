// Package tunnels selects and manages the physical tunnels (pre-
// established paths) over which FFC and PCF route traffic. The
// selection strategy follows the paper's evaluation (§5): tunnels are
// chosen to be as link-disjoint as possible, preferring shorter paths
// when there is a choice, falling back to link-penalized shortest paths
// when fully disjoint tunnels are exhausted.
package tunnels

import (
	"fmt"
	"math"
	"sort"

	"pcf/internal/topology"
)

// ID identifies a tunnel within a Set.
type ID int

// Tunnel is a pre-selected path for one source-destination pair.
type Tunnel struct {
	ID   ID
	Pair topology.Pair
	Path topology.Path
}

// Set is a collection of tunnels indexed by pair.
type Set struct {
	g       *topology.Graph
	tunnels []Tunnel
	byPair  map[topology.Pair][]ID
}

// NewSet returns an empty tunnel set over graph g.
func NewSet(g *topology.Graph) *Set {
	return &Set{g: g, byPair: make(map[topology.Pair][]ID)}
}

// Graph returns the underlying topology.
func (s *Set) Graph() *topology.Graph { return s.g }

// Add registers a tunnel for the pair along path and returns its ID.
// It validates that the path actually runs from pair.Src to pair.Dst.
func (s *Set) Add(pair topology.Pair, path topology.Path) (ID, error) {
	if len(path.Arcs) == 0 {
		return 0, fmt.Errorf("tunnels: empty path for %v", pair)
	}
	from, _ := s.g.ArcEnds(path.Arcs[0])
	_, to := s.g.ArcEnds(path.Arcs[len(path.Arcs)-1])
	if from != pair.Src || to != pair.Dst {
		return 0, fmt.Errorf("tunnels: path runs %d->%d, want %v", from, to, pair)
	}
	at := from
	for _, a := range path.Arcs {
		f, t := s.g.ArcEnds(a)
		if f != at {
			return 0, fmt.Errorf("tunnels: discontinuous path for %v", pair)
		}
		at = t
	}
	id := ID(len(s.tunnels))
	s.tunnels = append(s.tunnels, Tunnel{ID: id, Pair: pair, Path: path})
	s.byPair[pair] = append(s.byPair[pair], id)
	return id, nil
}

// MustAdd is Add that panics on error; for hand-built gadget fixtures
// where a bad path is a programmer error. The Must* naming places it on
// the pcflint/nopanic allowlist (DESIGN.md §10); data paths use Add.
func (s *Set) MustAdd(pair topology.Pair, path topology.Path) ID {
	id, err := s.Add(pair, path)
	if err != nil {
		panic(err)
	}
	return id
}

// Len reports the total number of tunnels.
func (s *Set) Len() int { return len(s.tunnels) }

// Tunnel returns the tunnel with the given ID.
func (s *Set) Tunnel(id ID) Tunnel { return s.tunnels[id] }

// ForPair returns the tunnel IDs for a pair, in insertion order. The
// returned slice must not be modified.
func (s *Set) ForPair(p topology.Pair) []ID { return s.byPair[p] }

// Pairs returns all pairs that have at least one tunnel, in a
// deterministic order.
func (s *Set) Pairs() []topology.Pair {
	out := make([]topology.Pair, 0, len(s.byPair))
	for p := range s.byPair {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// UsingLink returns the tunnels (across all pairs) that traverse link l.
func (s *Set) UsingLink(l topology.LinkID) []ID {
	var out []ID
	for _, t := range s.tunnels {
		if t.Path.UsesLink(l) {
			out = append(out, t.ID)
		}
	}
	return out
}

// MaxShared returns p_st for the pair: the maximum number of the
// pair's tunnels that share a single link (FFC's structure parameter).
func (s *Set) MaxShared(p topology.Pair) int {
	count := make(map[topology.LinkID]int)
	for _, id := range s.byPair[p] {
		seen := make(map[topology.LinkID]bool)
		for _, a := range s.tunnels[id].Path.Arcs {
			l := topology.LinkOf(a)
			if !seen[l] {
				seen[l] = true
				count[l]++
			}
		}
	}
	best := 0
	for _, c := range count {
		if c > best {
			best = c
		}
	}
	return best
}

// SelectOptions tune tunnel selection.
type SelectOptions struct {
	// PerPair is the number of tunnels to select per pair.
	PerPair int
	// Penalty multiplies the weight of a link each time an already
	// selected tunnel for the pair uses it. Defaults to 16 (strongly
	// prefer disjointness, as the paper does).
	Penalty float64
}

// Select chooses tunnels for every listed pair. For each pair it first
// takes fully link-disjoint shortest paths while they exist, then fills
// the remaining slots with penalized shortest paths, skipping exact
// duplicates.
func Select(g *topology.Graph, pairs []topology.Pair, opts SelectOptions) (*Set, error) {
	if opts.PerPair <= 0 {
		return nil, fmt.Errorf("tunnels: PerPair must be positive")
	}
	if opts.Penalty < 0 {
		// A negative penalty would feed negative weights into the
		// shortest-path machinery, which rejects them.
		return nil, fmt.Errorf("tunnels: Penalty must be nonnegative, got %g", opts.Penalty)
	}
	penalty := opts.Penalty
	if penalty == 0 {
		penalty = 16
	}
	set := NewSet(g)
	for _, pair := range pairs {
		// Phase 1: a maximum set of link-disjoint paths (up to
		// PerPair), found by successive shortest augmenting paths in
		// the unit-capacity residual graph (Suurballe-style, so two
		// disjoint tunnels exist whenever the graph is 2-edge-
		// connected, matching the paper's setup).
		chosen := disjointPaths(g, pair, opts.PerPair)
		numDisjoint := len(chosen)
		used := make(map[topology.LinkID]int)
		for _, p := range chosen {
			for _, a := range p.Arcs {
				used[topology.LinkOf(a)]++
			}
		}
		if len(chosen) == 0 {
			return nil, fmt.Errorf("tunnels: no path for pair %v", pair)
		}
		// Phase 2: fill the remaining slots from Yen's k-shortest-path
		// enumeration under usage-penalized weights, preferring low
		// overlap with the chosen set and then shorter length.
		if len(chosen) < opts.PerPair {
			weight := func(l topology.LinkID) float64 {
				w := g.Link(l).Weight
				for i := 0; i < used[l]; i++ {
					w *= penalty
				}
				return w
			}
			enum := g.KShortestPaths(pair.Src, pair.Dst, 4*opts.PerPair, weight)
			for _, p := range enum {
				if len(chosen) >= opts.PerPair {
					break
				}
				if !containsPath(chosen, p) {
					chosen = append(chosen, p)
					for _, a := range p.Arcs {
						used[topology.LinkOf(a)]++
					}
				}
			}
		}
		// Shorter tunnels first within each group, but fully disjoint
		// paths always precede penalized ones: Restrict(k) must keep
		// the most-disjoint prefix (FFC's 2-tunnel configuration
		// relies on a disjoint pair).
		disjointPart := chosen[:numDisjoint]
		extraPart := chosen[numDisjoint:]
		sort.SliceStable(disjointPart, func(i, j int) bool { return len(disjointPart[i].Arcs) < len(disjointPart[j].Arcs) })
		sort.SliceStable(extraPart, func(i, j int) bool { return len(extraPart[i].Arcs) < len(extraPart[j].Arcs) })
		for _, p := range chosen {
			if _, err := set.Add(pair, p); err != nil {
				return nil, err
			}
		}
	}
	return set, nil
}

func containsPath(paths []topology.Path, p topology.Path) bool {
	for _, q := range paths {
		if samePath(q, p) {
			return true
		}
	}
	return false
}

func samePath(a, b topology.Path) bool {
	if len(a.Arcs) != len(b.Arcs) {
		return false
	}
	for i := range a.Arcs {
		if a.Arcs[i] != b.Arcs[i] {
			return false
		}
	}
	return true
}

// Restrict returns a new Set containing only the first k tunnels of
// each pair, sharing the same underlying graph. Used by the experiments
// that sweep tunnel counts (Figs 8 and 9).
func (s *Set) Restrict(k int) *Set {
	out := NewSet(s.g)
	for _, p := range s.Pairs() {
		ids := s.byPair[p]
		for i, id := range ids {
			if i >= k {
				break
			}
			out.MustAdd(p, s.tunnels[id].Path)
		}
	}
	return out
}

// disjointPaths computes up to k link-disjoint src->dst paths of small
// total length via successive shortest augmenting paths on the
// unit-capacity (per link) residual graph. Reversing a used link has
// negative cost, so Bellman-Ford finds the augmenting paths.
func disjointPaths(g *topology.Graph, pair topology.Pair, k int) []topology.Path {
	n := g.NumNodes()
	// usage[l]: 0 = unused, +1 = used in forward arc dir, -1 = reverse.
	usage := make(map[topology.LinkID]int)
	flows := 0
	for flows < k {
		// Bellman-Ford over residual arcs.
		dist := make([]float64, n)
		prevArc := make([]topology.ArcID, n)
		for i := range dist {
			dist[i] = math.Inf(1)
			prevArc[i] = -1
		}
		dist[pair.Src] = 0
		for iter := 0; iter < n; iter++ {
			improved := false
			for li := 0; li < g.NumLinks(); li++ {
				l := g.Link(topology.LinkID(li))
				for _, arc := range []topology.ArcID{l.Forward(), l.Reverse()} {
					from, to := g.ArcEnds(arc)
					var cost float64
					switch usage[l.ID] {
					case 0:
						cost = l.Weight // either direction available
					case +1:
						if arc != l.Reverse() {
							continue // only cancellation allowed
						}
						cost = -l.Weight
					case -1:
						if arc != l.Forward() {
							continue
						}
						cost = -l.Weight
					}
					if dist[from]+cost < dist[to]-1e-12 {
						dist[to] = dist[from] + cost
						prevArc[to] = arc
						improved = true
					}
				}
			}
			if !improved {
				break
			}
		}
		if prevArc[pair.Dst] == -1 {
			break // no more disjoint paths
		}
		// Apply the augmenting path to the usage map.
		for at := pair.Dst; at != pair.Src; {
			arc := prevArc[at]
			l := topology.LinkOf(arc)
			dir := +1
			if arc == g.Link(l).Reverse() {
				dir = -1
			}
			if usage[l] == -dir {
				usage[l] = 0 // cancellation
			} else {
				usage[l] = dir
			}
			from, _ := g.ArcEnds(arc)
			at = from
		}
		flows++
	}
	if flows == 0 {
		return nil
	}
	// Decompose the flow into paths by walking from src. Iterate links
	// in ID order so the decomposition (and therefore tunnel selection)
	// is deterministic.
	usedLinks := make([]topology.LinkID, 0, len(usage))
	for l := range usage {
		usedLinks = append(usedLinks, l)
	}
	sort.Slice(usedLinks, func(i, j int) bool { return usedLinks[i] < usedLinks[j] })
	outArcs := map[topology.NodeID][]topology.ArcID{}
	for _, l := range usedLinks {
		dir := usage[l]
		if dir == 0 {
			continue
		}
		arc := g.Link(l).Forward()
		if dir == -1 {
			arc = g.Link(l).Reverse()
		}
		from, _ := g.ArcEnds(arc)
		outArcs[from] = append(outArcs[from], arc)
	}
	var paths []topology.Path
	for f := 0; f < flows; f++ {
		var arcs []topology.ArcID
		at := pair.Src
		for at != pair.Dst {
			list := outArcs[at]
			if len(list) == 0 {
				return paths // should not happen; be safe
			}
			arc := list[0]
			outArcs[at] = list[1:]
			arcs = append(arcs, arc)
			_, to := g.ArcEnds(arc)
			at = to
		}
		paths = append(paths, topology.Path{Arcs: arcs})
	}
	sort.SliceStable(paths, func(i, j int) bool { return len(paths[i].Arcs) < len(paths[j].Arcs) })
	return paths
}
