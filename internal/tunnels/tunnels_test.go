package tunnels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pcf/internal/topology"
)

func diamond() *topology.Graph {
	g := topology.New("diamond")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.AddLink(a, b, 1)
	g.AddLink(b, d, 1)
	g.AddLink(a, c, 1)
	g.AddLink(c, d, 1)
	g.AddLink(b, c, 1)
	return g
}

func TestSelectDisjoint(t *testing.T) {
	g := diamond()
	pair := topology.Pair{Src: 0, Dst: 3}
	s, err := Select(g, []topology.Pair{pair}, SelectOptions{PerPair: 2})
	if err != nil {
		t.Fatal(err)
	}
	ids := s.ForPair(pair)
	if len(ids) != 2 {
		t.Fatalf("got %d tunnels", len(ids))
	}
	if s.MaxShared(pair) != 1 {
		t.Fatalf("p_st = %d, want 1 (disjoint)", s.MaxShared(pair))
	}
}

func TestSelectThreeTunnels(t *testing.T) {
	g := diamond()
	pair := topology.Pair{Src: 0, Dst: 3}
	s, err := Select(g, []topology.Pair{pair}, SelectOptions{PerPair: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ForPair(pair)) != 3 {
		t.Fatalf("got %d tunnels", len(s.ForPair(pair)))
	}
	// Shorter tunnels must come first.
	ids := s.ForPair(pair)
	for i := 1; i < len(ids); i++ {
		if len(s.Tunnel(ids[i-1]).Path.Arcs) > len(s.Tunnel(ids[i]).Path.Arcs) {
			t.Fatal("tunnels not sorted by length")
		}
	}
}

// TestMengerGuarantee: on any 2-edge-connected graph, Select with
// PerPair=2 must return two link-disjoint tunnels for every pair (the
// paper relies on this property of its topologies).
func TestMengerGuarantee(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(4))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		g := topology.New("rand")
		for i := 0; i < n; i++ {
			g.AddNode("n")
		}
		// Ring guarantees 2-edge-connectivity; add chords.
		for i := 0; i < n; i++ {
			g.AddLink(topology.NodeID(i), topology.NodeID((i+1)%n), 1)
		}
		for e := 0; e < n/2; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddLink(topology.NodeID(a), topology.NodeID(b), 1)
			}
		}
		s, err := Select(g, g.AllPairs(), SelectOptions{PerPair: 2})
		if err != nil {
			return false
		}
		for _, p := range g.AllPairs() {
			if len(s.ForPair(p)) < 2 || s.MaxShared(p) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAddValidation(t *testing.T) {
	g := diamond()
	s := NewSet(g)
	if _, err := s.Add(topology.Pair{Src: 0, Dst: 3}, topology.Path{}); err == nil {
		t.Fatal("empty path accepted")
	}
	// Wrong endpoints.
	p, _ := g.ShortestPath(0, 2, nil, nil)
	if _, err := s.Add(topology.Pair{Src: 0, Dst: 3}, p); err == nil {
		t.Fatal("wrong-endpoint path accepted")
	}
	// Discontinuous path.
	l0 := g.Link(0) // a-b
	l3 := g.Link(3) // c-d
	bad := topology.Path{Arcs: []topology.ArcID{l0.Forward(), l3.Forward()}}
	if _, err := s.Add(topology.Pair{Src: 0, Dst: 3}, bad); err == nil {
		t.Fatal("discontinuous path accepted")
	}
}

func TestRestrict(t *testing.T) {
	g := diamond()
	pair := topology.Pair{Src: 0, Dst: 3}
	s, err := Select(g, []topology.Pair{pair}, SelectOptions{PerPair: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Restrict(2)
	if len(r.ForPair(pair)) != 2 {
		t.Fatalf("restrict kept %d", len(r.ForPair(pair)))
	}
	// Originals unchanged.
	if len(s.ForPair(pair)) != 3 {
		t.Fatal("restrict mutated source")
	}
}

func TestUsingLink(t *testing.T) {
	g := diamond()
	pair := topology.Pair{Src: 0, Dst: 3}
	s, _ := Select(g, []topology.Pair{pair}, SelectOptions{PerPair: 2})
	count := 0
	for l := 0; l < g.NumLinks(); l++ {
		count += len(s.UsingLink(topology.LinkID(l)))
	}
	// Each tunnel uses 2 links; total link-uses = 4.
	if count != 4 {
		t.Fatalf("link uses = %d, want 4", count)
	}
}

func TestParallelLinksAsDisjointTunnels(t *testing.T) {
	g := topology.New("par")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddLink(a, b, 1)
	g.AddLink(a, b, 1)
	pair := topology.Pair{Src: a, Dst: b}
	s, err := Select(g, []topology.Pair{pair}, SelectOptions{PerPair: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ForPair(pair)) != 2 || s.MaxShared(pair) != 1 {
		t.Fatalf("parallel links should give 2 disjoint tunnels (got %d, shared %d)",
			len(s.ForPair(pair)), s.MaxShared(pair))
	}
}
