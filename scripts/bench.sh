#!/bin/sh
# bench.sh — run the benchmark suite and record a JSON summary so the
# bench trajectory is tracked in-repo under results/.
#
# usage: scripts/bench.sh [pattern] [count]
#   pattern   go test -bench regexp (default: .)
#   count     repetitions per benchmark (default: 3)
# env:
#   BENCH_OUT        output path (default: results/BENCH_<YYYY-MM-DD>.json)
#   BENCHTIME        forwarded as -benchtime when set (e.g. 1x for a smoke run)
#   BENCH_STORE      telemetry store dir for ingestion (default: results/telemetry)
#   BENCH_THRESHOLD  regression gate passed to pcfbench (default: 0.20)
#
# The JSON records, per benchmark (mean over count runs): ns/op,
# B/op, allocs/op, and any custom b.ReportMetric units. After writing
# the summary, cmd/pcfbench ingests it into the telemetry store as
# kind=bench records and fails the run when a benchmark regressed more
# than the threshold against its previous stored record (a fresh store
# never gates).
set -eu

cd "$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd -P)"

pattern="${1:-.}"
count="${2:-3}"
date_tag="$(date +%Y-%m-%d)"
out="${BENCH_OUT:-results/BENCH_${date_tag}.json}"
mkdir -p "$(dirname -- "$out")"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

set -- -run '^$' -bench "$pattern" -benchmem -count "$count"
if [ -n "${BENCHTIME:-}" ]; then
	set -- "$@" -benchtime "$BENCHTIME"
fi
go test "$@" . | tee "$tmp"

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

awk -v date="$date_tag" -v commit="$commit" -v count="$count" \
	-v goversion="$(go env GOVERSION)" '
/^Benchmark/ && NF >= 4 {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
	if (!(name in seen)) { seen[name] = 1; order[++n] = name }
	for (i = 3; i + 1 <= NF; i += 2) {
		unit = $(i + 1)
		sum[name, unit] += $i
		cnt[name, unit]++
		if (!((name, unit) in useen)) {
			useen[name, unit] = 1
			units[name] = units[name] SUBSEP unit
		}
	}
}
END {
	printf "{\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"commit\": \"%s\",\n", commit
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"count\": %d,\n", count
	printf "  \"benchmarks\": [\n"
	for (k = 1; k <= n; k++) {
		name = order[k]
		printf "    {\"name\": \"%s\"", name
		m = split(substr(units[name], 2), us, SUBSEP)
		for (j = 1; j <= m; j++) {
			unit = us[j]
			mean = sum[name, unit] / cnt[name, unit]
			key = unit
			if (unit == "ns/op") key = "ns_per_op"
			else if (unit == "B/op") key = "bytes_per_op"
			else if (unit == "allocs/op") key = "allocs_per_op"
			else gsub(/[^A-Za-z0-9_]/, "_", key)
			printf ", \"%s\": %.6g", key, mean
		}
		printf "}%s\n", (k < n ? "," : "")
	}
	printf "  ]\n}\n"
}
' "$tmp" >"$out"

echo "bench summary written to $out"

store="${BENCH_STORE:-results/telemetry}"
go run ./cmd/pcfbench -in "$out" -store "$store" -threshold "${BENCH_THRESHOLD:-0.20}"
