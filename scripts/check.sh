#!/bin/sh
# check.sh is the contributor gate: formatting, vet, pcflint (the
# repo's own static analyzers, see DESIGN.md §10 and §15), build, and
# the full test suite under the race detector. Run it before sending a
# change.
set -eu

# Resolve the script's real location so the gate works when invoked
# through a symlink, then run from the repo root. readlink -f is not
# POSIX, so follow links manually.
script=$0
while [ -L "$script" ]; do
	target=$(readlink "$script")
	case $target in
	/*) script=$target ;;
	*) script=$(dirname "$script")/$target ;;
	esac
done
cd "$(dirname "$script")/.."

echo "== gofmt"
# Only tracked files: gofmt -l . would also complain about generated
# trees and scratch files that are not part of the change.
unformatted=$(git ls-files -z -- '*.go' | xargs -0 gofmt -l)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== pcflint (-tests: test files held to the same bar)"
go run ./cmd/pcflint -tests ./...

echo "== pcflint docs"
# The analyzer table in DESIGN.md must match `pcflint -list` exactly.
./scripts/lintdocs.sh

echo "== go build"
go build ./...

echo "== go build cmd/pcfd + cmd/pcffe"
# Link the daemon and front-end binaries explicitly: `go build ./...`
# type-checks main packages but a broken link (e.g. a bad linker flag
# or a main-only symbol clash) only surfaces when the binary is
# actually produced.
go build -o /tmp/pcfd.check ./cmd/pcfd
go build -o /tmp/pcffe.check ./cmd/pcffe
rm -f /tmp/pcfd.check /tmp/pcffe.check

echo "== go test -race"
go test -race ./...

echo "== fleet chaos smoke (-race -short)"
# The fleet soak also runs inside `go test -race ./...` above, but in
# full (slow) mode only when -short is not set there; this explicit
# short pass mirrors the CI chaos-smoke job so a local gate run always
# exercises the kill/partition/tear schedule the same way CI does.
go test -race -short -count=1 -run 'TestFleetChaosSoak' ./internal/fleet/

echo "== sampled-validation determinism (-count=2)"
# The coverage report of a sampled validation must be byte-identical
# for the same seed, run after run, regardless of sweep-worker
# scheduling (DESIGN.md §18). -count=2 forces two fresh runs of the
# determinism property so a time- or schedule-dependent regression
# cannot hide behind Go's test result cache.
go test -race -count=2 -run 'TestSampledCoverageDeterminism|TestSamplerSeedDeterminism' ./internal/routing/ ./internal/failures/

echo "OK"
