#!/bin/sh
# lintdocs.sh asserts the analyzer table in DESIGN.md §15 (between the
# lintdocs:begin/end markers) is byte-identical to the live output of
# `go run ./cmd/pcflint -list`. Adding, renaming or redocumenting an
# analyzer without updating DESIGN.md fails the gate here.
set -eu

script=$0
while [ -L "$script" ]; do
	target=$(readlink "$script")
	case $target in
	/*) script=$target ;;
	*) script=$(dirname "$script")/$target ;;
	esac
done
cd "$(dirname "$script")/.."

documented=$(awk '/<!-- lintdocs:begin -->/{f=1; next}
	/<!-- lintdocs:end -->/{f=0}
	f && !/^```/' DESIGN.md)
if [ -z "$documented" ]; then
	echo "lintdocs: no analyzer table found between lintdocs markers in DESIGN.md" >&2
	exit 1
fi

actual=$(go run ./cmd/pcflint -list)

if [ "$documented" != "$actual" ]; then
	echo "lintdocs: DESIGN.md analyzer table is out of date with pcflint -list:" >&2
	printf '%s\n' "$documented" >/tmp/lintdocs.documented
	printf '%s\n' "$actual" >/tmp/lintdocs.actual
	diff -u /tmp/lintdocs.documented /tmp/lintdocs.actual >&2 || true
	rm -f /tmp/lintdocs.documented /tmp/lintdocs.actual
	exit 1
fi
echo "lintdocs: DESIGN.md analyzer table matches pcflint -list"
